"""Epoch-based NFV performance simulator.

For every epoch the simulator:

1. draws offered load for the monitored chain and all background
   chains (which share servers and create contention),
2. applies any active faults (see :mod:`repro.nfv.faults`),
3. accounts CPU demand per server; oversubscribed servers scale every
   hosted VNF's capacity down proportionally,
4. walks the monitored chain VNF by VNF: M/M/1/K loss, M/G/1 queueing
   delay (scaled by a batch factor — software data planes process
   packets in batches, which inflates queueing delay relative to the
   per-packet ideal), memory pressure with a swap penalty,
5. records noisy telemetry and the ground-truth labels (end-to-end
   latency, loss, SLA violation, root cause, culprit VNF set).

Units: kpps ≡ packets/ms, so queueing formulas fed kpps rates directly
return milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nfv.faults import (
    CHAIN_LEVEL_FAULTS,
    FaultEvent,
    FaultKind,
    NO_FAULT,
)
from repro.nfv.placement import FirstFitPlacement, WorstFitPlacement
from repro.nfv.queueing import mg1_waiting_time, mm1k_loss_probability
from repro.nfv.sfc import SLA, ServiceFunctionChain
from repro.nfv.telemetry import TelemetryCollector
from repro.nfv.topology import NfviTopology
from repro.nfv.traffic import TrafficModel
from repro.nfv.vnf import VNFInstance
from repro.utils.rng import check_random_state, spawn_rngs
from repro.utils.tabular import FeatureMatrix

__all__ = [
    "EpochBatch",
    "SimulationStream",
    "Testbed",
    "Simulator",
    "SimulationResult",
    "build_testbed",
]

#: Memory utilization above which the swap penalty kicks in.
SWAP_THRESHOLD = 0.9
#: Floor on the capacity multiplier under heavy swapping.
SWAP_FLOOR = 0.25
#: Leak growth per epoch at severity 1.0, as a fraction of allocation.
LEAK_RATE_PER_EPOCH = 0.04


@dataclass
class Testbed:
    """A placed deployment the simulator can run.

    Attributes
    ----------
    topology:
        The NFVI with all chains already placed.
    chain:
        The monitored chain (features/labels are recorded for it).
    background_chains:
        Chains that share servers with the monitored chain and create
        contention, with their own traffic models.
    traffic:
        Traffic model of the monitored chain.
    background_traffic:
        One traffic model per background chain.
    """

    topology: NfviTopology
    chain: ServiceFunctionChain
    traffic: TrafficModel
    background_chains: list[ServiceFunctionChain] = field(default_factory=list)
    background_traffic: list[TrafficModel] = field(default_factory=list)

    def __post_init__(self):
        if len(self.background_chains) != len(self.background_traffic):
            raise ValueError(
                "background_chains and background_traffic must align"
            )
        for inst in self.chain.instances:
            if inst.server_id is None:
                raise ValueError(
                    f"instance {inst.instance_id} is not placed; "
                    "run placement before building the testbed"
                )


@dataclass
class SimulationResult:
    """Everything one simulation run produced.

    Attributes
    ----------
    features:
        Noisy telemetry, one row per epoch (named columns).
    latency_ms, loss_rate:
        Ground-truth end-to-end metrics of the monitored chain.
    sla_violation:
        Binary labels (1 = violated).
    root_cause:
        Per-epoch string label: a :class:`FaultKind` value or ``"none"``.
    culprit_vnfs:
        Per-epoch tuple of VNF indices directly affected by the active
        fault (empty when no fault, or for chain-level faults).
    events:
        The injected fault schedule.
    chain:
        The monitored chain (for resolving VNF indices in reports).
    """

    features: FeatureMatrix
    latency_ms: np.ndarray
    loss_rate: np.ndarray
    sla_violation: np.ndarray
    root_cause: np.ndarray
    culprit_vnfs: list[tuple[int, ...]]
    events: list[FaultEvent]
    chain: ServiceFunctionChain | None = None

    @property
    def n_epochs(self) -> int:
        return len(self.latency_ms)

    @property
    def violation_rate(self) -> float:
        """Fraction of epochs that violated the SLA (0.0 for an empty
        run — never NaN, so downstream aggregation stays warning-free)."""
        if self.n_epochs == 0:
            return 0.0
        return float(np.mean(self.sla_violation))

    def summary(self) -> str:
        """One-paragraph run summary for logs and examples."""
        if self.n_epochs == 0:
            return "0 epochs | empty run (no telemetry recorded)"
        causes, counts = np.unique(self.root_cause, return_counts=True)
        cause_txt = ", ".join(f"{c}: {n}" for c, n in zip(causes, counts))
        return (
            f"{self.n_epochs} epochs | violation rate "
            f"{self.violation_rate:.1%} | median latency "
            f"{np.median(self.latency_ms):.2f} ms | root causes: {cause_txt}"
        )


@dataclass
class EpochBatch:
    """A contiguous slice of simulated epochs, emitted by a stream.

    The streaming unit of telemetry: everything
    :class:`SimulationResult` records, restricted to epochs
    ``[start_epoch, end_epoch)``.  Batches from one stream are disjoint,
    ordered, and cover the horizon exactly, so concatenating them
    reproduces the materialized run byte for byte (see
    :meth:`SimulationStream.collect`).
    """

    start_epoch: int
    features: FeatureMatrix
    latency_ms: np.ndarray
    loss_rate: np.ndarray
    sla_violation: np.ndarray
    root_cause: np.ndarray
    culprit_vnfs: list[tuple[int, ...]]

    @property
    def n_epochs(self) -> int:
        return len(self.latency_ms)

    @property
    def end_epoch(self) -> int:
        """One past the last epoch in this batch."""
        return self.start_epoch + self.n_epochs

    @property
    def violation_rate(self) -> float:
        if self.n_epochs == 0:
            return 0.0
        return float(np.mean(self.sla_violation))


class SimulationStream:
    """Single-pass iterator over :class:`EpochBatch` objects.

    Produced by :meth:`Simulator.stream` (and, one level up,
    :meth:`repro.nfv.scenarios.ScenarioSpec.stream`).  The fault
    schedule, traffic traces, and chain metadata are resolved eagerly —
    ``events``, ``chain``, and ``feature_names`` are available before
    the first batch — while telemetry is simulated lazily, one batch at
    a time, as the stream is consumed.

    Attributes
    ----------
    chain:
        The monitored chain (for resolving VNF indices in reports).
    events:
        The full injected fault schedule (drawn up front, like
        :meth:`Simulator.run` does).
    feature_names:
        Telemetry schema of every batch's ``features``.
    n_epochs, batch_epochs:
        Total horizon and the batch granularity; every batch has
        ``batch_epochs`` epochs except possibly the last.
    """

    def __init__(self, batches, *, chain, events, feature_names,
                 n_epochs: int, batch_epochs: int):
        self._batches = batches
        self.chain = chain
        self.events = events
        self.feature_names = list(feature_names)
        self.n_epochs = int(n_epochs)
        self.batch_epochs = int(batch_epochs)

    def __iter__(self):
        return self._batches

    def collect(self) -> SimulationResult:
        """Drain the (remaining) stream into a :class:`SimulationResult`.

        Streaming the full horizon and collecting reproduces
        :meth:`Simulator.run` byte for byte under the same seed — the
        contract ``tests/nfv/test_simulator_stream.py`` enforces.
        """
        batches = list(self._batches)
        if not batches:
            raise ValueError("stream is exhausted; nothing to collect")
        culprits: list[tuple[int, ...]] = []
        for batch in batches:
            culprits.extend(batch.culprit_vnfs)
        return SimulationResult(
            features=FeatureMatrix(
                np.vstack([b.features.values for b in batches]),
                self.feature_names,
            ),
            latency_ms=np.concatenate([b.latency_ms for b in batches]),
            loss_rate=np.concatenate([b.loss_rate for b in batches]),
            sla_violation=np.concatenate([b.sla_violation for b in batches]),
            root_cause=np.concatenate([b.root_cause for b in batches]),
            culprit_vnfs=culprits,
            events=self.events,
            chain=self.chain,
        )


class _VNFState:
    """Mutable per-instance fault state (leak level, config factor)."""

    def __init__(self, instance: VNFInstance):
        self.instance = instance
        self.leak_mb = 0.0
        self.config_factor = 1.0  # multiplicative capacity factor


class Simulator:
    """Runs a :class:`Testbed` for a number of epochs.

    Parameters
    ----------
    testbed:
        The placed deployment to simulate.
    batch_factor:
        Multiplier on queueing delay representing batched packet
        processing in software data planes (DPDK-style polling).
    buffer_pkts:
        Per-VNF queue size for the M/M/1/K loss model.
    measurement_noise:
        Relative telemetry noise (see
        :class:`~repro.nfv.telemetry.TelemetryCollector`).
    service_scv:
        Squared coefficient of variation of VNF service times
        (1.0 = exponential/M/M/1-like, 0.0 = deterministic/M/D/1).
    """

    def __init__(
        self,
        testbed: Testbed,
        *,
        batch_factor: float = 32.0,
        buffer_pkts: int = 64,
        measurement_noise: float = 0.02,
        service_scv: float = 1.0,
        random_state=None,
    ):
        if batch_factor <= 0:
            raise ValueError(f"batch_factor must be positive, got {batch_factor}")
        if buffer_pkts < 1:
            raise ValueError(f"buffer_pkts must be >= 1, got {buffer_pkts}")
        if service_scv < 0:
            raise ValueError(f"service_scv must be >= 0, got {service_scv}")
        self.testbed = testbed
        self.batch_factor = batch_factor
        self.buffer_pkts = buffer_pkts
        self.measurement_noise = measurement_noise
        self.service_scv = service_scv
        self.random_state = random_state

    # ------------------------------------------------------------------
    def run(
        self,
        n_epochs: int,
        *,
        fault_events: list[FaultEvent] | None = None,
        fault_injector=None,
    ) -> SimulationResult:
        """Simulate ``n_epochs`` epochs and return the labelled telemetry.

        Provide either an explicit ``fault_events`` schedule, a
        ``fault_injector`` (a schedule is drawn), or neither (fault-free
        run — violations then stem only from natural overload).

        Implemented as one maximal batch of :meth:`stream`, so the
        materialized and streaming paths cannot drift apart.
        """
        return self.stream(
            n_epochs,
            batch_epochs=n_epochs,
            fault_events=fault_events,
            fault_injector=fault_injector,
        ).collect()

    def stream(
        self,
        n_epochs: int,
        *,
        batch_epochs: int = 64,
        fault_events: list[FaultEvent] | None = None,
        fault_injector=None,
    ) -> SimulationStream:
        """Simulate lazily, yielding :class:`EpochBatch` slices.

        The online counterpart of :meth:`run`: setup (RNG spawning,
        fault schedule, traffic traces) happens eagerly and in exactly
        the same order as :meth:`run`, then epochs are simulated only as
        the returned :class:`SimulationStream` is consumed, in batches
        of ``batch_epochs``.  Collecting the full stream therefore
        reproduces :meth:`run` byte for byte under the same seed —
        batching changes *when* telemetry materializes, never its
        values.

        Parameters
        ----------
        n_epochs:
            Total simulation horizon.
        batch_epochs:
            Epochs per emitted batch (the last batch may be shorter).
        fault_events, fault_injector:
            As in :meth:`run` — one explicit schedule, one injector to
            draw from, or neither.
        """
        if n_epochs < 1:
            raise ValueError(f"n_epochs must be >= 1, got {n_epochs}")
        if batch_epochs < 1:
            raise ValueError(f"batch_epochs must be >= 1, got {batch_epochs}")
        if fault_events is not None and fault_injector is not None:
            raise ValueError("pass fault_events or fault_injector, not both")
        rng = check_random_state(self.random_state)
        (traffic_rng, bg_rng, telemetry_rng, sched_rng) = spawn_rngs(rng, 4)

        tb = self.testbed
        if fault_injector is not None:
            fault_events = fault_injector.schedule(n_epochs, tb.chain, sched_rng)
        events = list(fault_events) if fault_events else []

        trace = tb.traffic.generate(n_epochs, traffic_rng)
        bg_rngs = spawn_rngs(bg_rng, len(tb.background_chains))
        bg_traces = [
            model.generate(n_epochs, r)
            for model, r in zip(tb.background_traffic, bg_rngs)
        ]

        collector = TelemetryCollector(
            tb.chain, noise_sigma=self.measurement_noise, random_state=telemetry_rng
        )
        states = [_VNFState(inst) for inst in tb.chain.instances]
        base_propagation_ms = tb.chain.propagation_latency_us(tb.topology) / 1000.0

        def batches():
            latency: list[float] = []
            loss: list[float] = []
            violation: list[int] = []
            root_cause: list[str] = []
            culprits: list[tuple[int, ...]] = []
            start = 0
            for t in range(n_epochs):
                active = [e for e in events if e.active_at(t)]
                epoch_out = self._run_epoch(
                    t, trace, bg_traces, states, active,
                    base_propagation_ms, collector,
                )
                latency.append(epoch_out["latency_ms"])
                loss.append(epoch_out["loss_rate"])
                violation.append(int(tb.chain.sla.is_violated(
                    epoch_out["latency_ms"], epoch_out["loss_rate"]
                )))
                cause, culprit = self._ground_truth(active, tb)
                root_cause.append(cause)
                culprits.append(culprit)
                if len(latency) == batch_epochs or t == n_epochs - 1:
                    yield EpochBatch(
                        start_epoch=start,
                        features=collector.flush(),
                        latency_ms=np.asarray(latency),
                        loss_rate=np.asarray(loss),
                        sla_violation=np.asarray(violation, dtype=np.int64),
                        root_cause=np.asarray(root_cause, dtype=object),
                        culprit_vnfs=culprits,
                    )
                    start = t + 1
                    latency, loss, violation = [], [], []
                    root_cause, culprits = [], []

        return SimulationStream(
            batches(),
            chain=tb.chain,
            events=events,
            feature_names=collector.feature_names,
            n_epochs=n_epochs,
            batch_epochs=batch_epochs,
        )

    # ------------------------------------------------------------------
    def _run_epoch(
        self, t, trace, bg_traces, states, active, base_propagation_ms, collector
    ) -> dict:
        tb = self.testbed
        offered = float(trace.offered_kpps[t])
        kflows = float(trace.active_kflows[t])
        burstiness = float(trace.burstiness[t])

        # ---- apply chain-level faults -------------------------------
        propagation_ms = base_propagation_ms
        extra_chain_loss = 0.0
        for event in active:
            if event.kind is FaultKind.TRAFFIC_SURGE:
                offered *= 1.0 + 2.0 * event.severity
                kflows *= 1.0 + 1.5 * event.severity
            elif event.kind is FaultKind.LINK_DEGRADATION:
                propagation_ms *= 1.0 + 3.0 * event.severity
                extra_chain_loss += 0.02 * event.severity

        # ---- per-VNF fault state updates ----------------------------
        for i, state in enumerate(states):
            state.config_factor = 1.0
            leak_active = False
            for event in active:
                if event.vnf_index != i:
                    continue
                if event.kind is FaultKind.CONFIG_ERROR:
                    state.config_factor = min(
                        state.config_factor, 1.0 - 0.7 * event.severity
                    )
                elif event.kind is FaultKind.MEMORY_LEAK:
                    leak_active = True
                    state.leak_mb += (
                        LEAK_RATE_PER_EPOCH
                        * event.severity
                        * state.instance.mem_mb
                    )
            if not leak_active and state.leak_mb > 0.0:
                # leaked memory is reclaimed once the buggy VNF restarts
                state.leak_mb = 0.0

        # ---- CPU demand accounting per server -----------------------
        demand = {sid: 0.0 for sid in tb.topology.servers}
        for state in states:
            demand[state.instance.server_id] += self._cores_needed(
                state.instance, offered, kflows
            )
        for chain, bg_trace in zip(tb.background_chains, bg_traces):
            bg_offered = float(bg_trace.offered_kpps[t])
            bg_kflows = float(bg_trace.active_kflows[t])
            for inst in chain.instances:
                demand[inst.server_id] += self._cores_needed(
                    inst, bg_offered, bg_kflows
                )
        for event in active:
            if event.kind is FaultKind.CPU_CONTENTION:
                server = tb.topology.server(event.server_id)
                demand[event.server_id] += event.severity * server.cpu_cores

        contention = {}
        for sid, server in tb.topology.servers.items():
            contention[sid] = (
                min(1.0, server.cpu_cores / demand[sid]) if demand[sid] > 0 else 1.0
            )
        pressure = {
            sid: demand[sid] / tb.topology.servers[sid].cpu_cores
            for sid in demand
        }

        # ---- walk the chain -----------------------------------------
        arrival = offered
        total_queue_ms = 0.0
        total_proc_ms = 0.0
        vnf_metrics = []
        for state in states:
            inst = state.instance
            server = tb.topology.server(inst.server_id)
            capacity = inst.nominal_capacity_kpps(server.cpu_speed)
            capacity *= contention[inst.server_id]
            capacity *= state.config_factor

            mem_used = inst.profile.memory_mb(kflows) + state.leak_mb
            mem_util = min(mem_used / inst.mem_mb, 1.05)
            if mem_util > SWAP_THRESHOLD:
                swap_penalty = max(
                    SWAP_FLOOR, 1.0 - 3.0 * (mem_util - SWAP_THRESHOLD)
                )
                capacity *= swap_penalty

            capacity = max(capacity, 1e-6)
            p_loss = mm1k_loss_probability(arrival, capacity, self.buffer_pkts)
            served = arrival * (1.0 - p_loss)
            utilization = min(arrival / capacity, 1.5)
            queue_ms = (
                mg1_waiting_time(served, capacity, scv=self.service_scv * burstiness**2)
                * self.batch_factor
            )
            proc_ms = inst.profile.base_latency_us / 1000.0

            total_queue_ms += queue_ms
            total_proc_ms += proc_ms
            vnf_metrics.append(
                {
                    # capacity already includes contention and fault
                    # penalties, so utilization saturates past 1.0 when
                    # the VNF is starved or overloaded
                    "cpu_util": min(utilization, 1.2),
                    "mem_util": mem_util,
                    "queue_ms": queue_ms,
                    "drop_rate": p_loss,
                    "host_pressure": pressure[inst.server_id],
                }
            )
            arrival = served

        delivered = arrival * (1.0 - extra_chain_loss)
        loss_rate = 1.0 - delivered / offered if offered > 0 else 0.0
        latency_ms = total_queue_ms + total_proc_ms + propagation_ms

        collector.record_epoch(
            vnf_metrics=vnf_metrics,
            chain_metrics={
                "offered_kpps": offered,
                "active_kflows": kflows,
                "burstiness": burstiness,
                "propagation_ms": propagation_ms,
            },
            epoch=t,
            period_epochs=tb.traffic.period_epochs,
        )
        return {"latency_ms": latency_ms, "loss_rate": loss_rate}

    @staticmethod
    def _cores_needed(inst: VNFInstance, offered_kpps: float, kflows: float) -> float:
        """Cores an instance needs to serve ``offered_kpps`` (uncapped)."""
        per_core = inst.profile.capacity_kpps_per_vcpu
        return min(
            offered_kpps / per_core + inst.profile.cpu_per_kflow * kflows,
            inst.vcpus,  # an instance cannot use more cores than allocated
        )

    def _ground_truth(self, active, tb) -> tuple[str, tuple[int, ...]]:
        """Root-cause label and culprit VNF set for the current epoch.

        With multiple simultaneous faults (possible only with a manual
        schedule) the earliest-starting one is labelled.
        """
        if not active:
            return NO_FAULT, ()
        event = min(active, key=lambda e: e.start_epoch)
        if event.kind in CHAIN_LEVEL_FAULTS:
            return event.kind.value, ()
        if event.vnf_index is not None:
            return event.kind.value, (event.vnf_index,)
        affected = tuple(
            i
            for i, inst in enumerate(tb.chain.instances)
            if inst.server_id == event.server_id
        )
        return event.kind.value, affected


# ----------------------------------------------------------------------
# canonical testbed
# ----------------------------------------------------------------------
#: Default monitored chain: a realistic security-service chain.
DEFAULT_CHAIN_TYPES = ("firewall", "nat", "ids", "lb", "dpi")

#: Per-type default allocations (vcpus, mem_mb) sized so the chain runs
#: at 45–80% utilization at the default base load — close enough to the
#: knee that surges and faults push it over.
DEFAULT_ALLOCATIONS = {
    "firewall": (1.0, 1024.0),
    "nat": (1.0, 1024.0),
    "ids": (2.0, 2048.0),
    "lb": (1.0, 512.0),
    "dpi": (3.0, 3072.0),
    "wanopt": (2.0, 4096.0),
    "transcoder": (4.0, 2048.0),
    "cache": (1.0, 8192.0),
}


def build_testbed(
    *,
    chain_types=DEFAULT_CHAIN_TYPES,
    base_kpps: float = 400.0,
    sla: SLA | None = None,
    n_background: int = 2,
    topology: NfviTopology | None = None,
    random_state=None,
) -> Testbed:
    """Build the canonical placed testbed used across examples/benches.

    A leaf-spine fabric hosts one monitored security chain plus
    ``n_background`` smaller chains placed first-fit, so several VNFs
    share servers and contention is real.
    """
    rng = check_random_state(random_state)
    if topology is None:
        topology = NfviTopology.leaf_spine(
            n_spine=2, n_leaf=2, servers_per_leaf=2, cpu_cores=8.0, mem_mb=16384.0
        )
    sla = sla or SLA(max_latency_ms=3.0, max_loss_rate=0.01)

    def make_chain(chain_id: str, types, scale: float = 1.0):
        instances = []
        for i, vnf_type in enumerate(types):
            vcpus, mem = DEFAULT_ALLOCATIONS[vnf_type]
            instances.append(
                VNFInstance(
                    vnf_type,
                    vcpus=vcpus * scale,
                    mem_mb=mem * scale,
                    instance_id=f"{chain_id}-{i}-{vnf_type}",
                )
            )
        return ServiceFunctionChain(chain_id, instances, sla)

    # worst-fit spreads the monitored chain across servers so that
    # inter-VNF propagation (and link-degradation faults) matter; the
    # background chains then pack first-fit onto the busiest servers,
    # which creates genuine co-location with the monitored VNFs.
    chain = make_chain("monitored", chain_types)
    WorstFitPlacement().place(chain, topology)
    placement = FirstFitPlacement()

    background_chains = []
    background_traffic = []
    bg_type_sets = [
        ("firewall", "lb"),
        ("nat", "ids"),
        ("firewall", "nat", "lb"),
        ("ids", "lb"),
    ]
    for b in range(n_background):
        bg_chain = make_chain(f"bg{b}", bg_type_sets[b % len(bg_type_sets)], scale=0.5)
        placement.place(bg_chain, topology)
        background_chains.append(bg_chain)
        background_traffic.append(
            TrafficModel(
                base_kpps=base_kpps * 0.5,
                diurnal_amplitude=0.3,
                phase=float(rng.uniform(0, 2 * np.pi)),
                flash_crowd_rate=0.002,
            )
        )

    traffic = TrafficModel(base_kpps=base_kpps)
    return Testbed(
        topology=topology,
        chain=chain,
        traffic=traffic,
        background_chains=background_chains,
        background_traffic=background_traffic,
    )
