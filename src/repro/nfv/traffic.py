"""Traffic generation for service chains.

Produces per-epoch offered load (kpps), active flow counts (kflows) and
a burstiness index.  The model composes:

* a diurnal sinusoid (ISP-style day/night swing),
* multiplicative lognormal noise (short-term variability),
* Poisson-arriving flash crowds with geometric durations and Pareto
  magnitudes (heavy-tailed surges),
* flow counts coupled to load through a mean flow size with its own
  noise (so flow-table pressure and packet rate are correlated but not
  identical — important for telling memory faults from overload).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import check_random_state

__all__ = ["TrafficModel", "TrafficTrace"]


@dataclass
class TrafficTrace:
    """Per-epoch traffic arrays produced by :class:`TrafficModel`."""

    offered_kpps: np.ndarray
    active_kflows: np.ndarray
    burstiness: np.ndarray

    def __post_init__(self):
        lengths = {
            len(self.offered_kpps),
            len(self.active_kflows),
            len(self.burstiness),
        }
        if len(lengths) != 1:
            raise ValueError("trace arrays must have equal length")

    @property
    def n_epochs(self) -> int:
        return len(self.offered_kpps)

    def scaled(self, factor: float) -> "TrafficTrace":
        """Trace with offered load (and flows) scaled by ``factor``."""
        return TrafficTrace(
            offered_kpps=self.offered_kpps * factor,
            active_kflows=self.active_kflows * factor,
            burstiness=self.burstiness.copy(),
        )


class TrafficModel:
    """Stochastic diurnal traffic with flash crowds.

    Parameters
    ----------
    base_kpps:
        Mean offered load.
    diurnal_amplitude:
        Relative day/night swing in [0, 1); 0 disables the sinusoid.
    period_epochs:
        Epochs per diurnal cycle (e.g. 1440 one-minute epochs per day).
    noise_sigma:
        Sigma of the multiplicative lognormal noise.
    flash_crowd_rate:
        Probability a flash crowd *starts* at any epoch.
    flash_magnitude:
        Mean multiplier of a flash crowd (Pareto-distributed, >= 1).
    mean_flow_size_pkts:
        Average packets per flow; links flow count to packet rate.
    """

    def __init__(
        self,
        base_kpps: float = 400.0,
        diurnal_amplitude: float = 0.35,
        period_epochs: int = 288,
        noise_sigma: float = 0.08,
        flash_crowd_rate: float = 0.004,
        flash_magnitude: float = 1.8,
        flash_duration_epochs: int = 12,
        mean_flow_size_pkts: float = 50.0,
        phase: float = 0.0,
    ):
        if base_kpps <= 0:
            raise ValueError(f"base_kpps must be positive, got {base_kpps}")
        if not 0.0 <= diurnal_amplitude < 1.0:
            raise ValueError(
                f"diurnal_amplitude must be in [0, 1), got {diurnal_amplitude}"
            )
        if period_epochs < 1:
            raise ValueError(f"period_epochs must be >= 1, got {period_epochs}")
        if noise_sigma < 0:
            raise ValueError(f"noise_sigma must be >= 0, got {noise_sigma}")
        if not 0.0 <= flash_crowd_rate <= 1.0:
            raise ValueError(
                f"flash_crowd_rate must be in [0, 1], got {flash_crowd_rate}"
            )
        if flash_magnitude < 1.0:
            raise ValueError(
                f"flash_magnitude must be >= 1, got {flash_magnitude}"
            )
        if flash_duration_epochs < 1:
            raise ValueError(
                f"flash_duration_epochs must be >= 1, got {flash_duration_epochs}"
            )
        if mean_flow_size_pkts <= 0:
            raise ValueError(
                f"mean_flow_size_pkts must be positive, got {mean_flow_size_pkts}"
            )
        self.base_kpps = base_kpps
        self.diurnal_amplitude = diurnal_amplitude
        self.period_epochs = period_epochs
        self.noise_sigma = noise_sigma
        self.flash_crowd_rate = flash_crowd_rate
        self.flash_magnitude = flash_magnitude
        self.flash_duration_epochs = flash_duration_epochs
        self.mean_flow_size_pkts = mean_flow_size_pkts
        self.phase = phase

    # ------------------------------------------------------------------
    def generate(self, n_epochs: int, random_state=None) -> TrafficTrace:
        """Generate a :class:`TrafficTrace` of ``n_epochs`` epochs."""
        if n_epochs < 1:
            raise ValueError(f"n_epochs must be >= 1, got {n_epochs}")
        rng = check_random_state(random_state)
        t = np.arange(n_epochs)
        diurnal = 1.0 + self.diurnal_amplitude * np.sin(
            2.0 * np.pi * t / self.period_epochs + self.phase
        )
        noise = rng.lognormal(
            mean=-0.5 * self.noise_sigma**2, sigma=self.noise_sigma, size=n_epochs
        )
        surge = self._flash_crowds(n_epochs, rng)
        offered = self.base_kpps * diurnal * noise * surge
        # burstiness: 1.0 nominal, elevated during flash crowds + noise
        burstiness = np.clip(
            1.0 + 0.5 * (surge - 1.0) + rng.normal(0.0, 0.05, size=n_epochs),
            0.5,
            None,
        )
        # flows ~ packet rate / flow size; flash crowds bring many small
        # flows, so flow count grows super-linearly during surges
        flow_noise = rng.lognormal(mean=0.0, sigma=0.1, size=n_epochs)
        active_kflows = (
            offered
            / self.mean_flow_size_pkts
            * np.where(surge > 1.0, surge**0.5, 1.0)
            * flow_noise
        )
        return TrafficTrace(
            offered_kpps=offered,
            active_kflows=active_kflows,
            burstiness=burstiness,
        )

    def _flash_crowds(self, n_epochs: int, rng) -> np.ndarray:
        """Multiplicative surge series (1.0 = no surge)."""
        surge = np.ones(n_epochs)
        starts = np.flatnonzero(rng.random(n_epochs) < self.flash_crowd_rate)
        for start in starts:
            duration = 1 + rng.geometric(1.0 / self.flash_duration_epochs)
            # Pareto with mean flash_magnitude: mean = x_m*a/(a-1); fix a=2.5
            a = 2.5
            x_m = self.flash_magnitude * (a - 1.0) / a
            magnitude = max(1.0, x_m * (1.0 + rng.pareto(a)))
            end = min(start + duration, n_epochs)
            # ramp up then decay within the crowd window
            window = np.arange(end - start)
            shape = np.exp(-window / max(duration / 2.0, 1.0))
            surge[start:end] = np.maximum(
                surge[start:end], 1.0 + (magnitude - 1.0) * shape
            )
        return surge
