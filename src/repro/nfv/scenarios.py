"""Named, seedable workload scenarios for the NFV testbed.

The paper's evaluation runs on a single synthetic testbed shape; real
deployments see wildly different regimes (bursty CDN traffic, strong
diurnal ISP swings, fault storms during rollouts, heterogeneous server
fleets, ...).  An explainer that looks faithful under one regime may
fall apart under another, so every explainer/model pairing should be
stress-tested across a *catalog* of conditions.

This module is that catalog: a registry of scenario generators, each a
function of a random generator (plus scenario-specific knobs) that
returns a fully-configured :class:`ScenarioSpec` — a placed testbed, a
fault injector, and simulator parameters.  Everything downstream
(dataset builders, the matrix experiment runner, the CLI, benches)
refers to scenarios by name::

    from repro.nfv.scenarios import build_scenario, list_scenarios

    list_scenarios()
    # ['baseline', 'bursty-traffic', 'cascading-overload', ...]

    spec = build_scenario("fault-storm", random_state=7)
    sim = Simulator(spec.testbed, random_state=7, **spec.simulator_kwargs)
    result = sim.run(2000, fault_injector=spec.injector)

Scenarios are deterministic: the same name and integer seed always
produce the same testbed, schedule distribution, and (through
:func:`repro.datasets.make_scenario_dataset`) byte-identical datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nfv.faults import FaultInjector, FaultKind
from repro.nfv.sfc import SLA
from repro.nfv.simulator import (
    SimulationStream,
    Simulator,
    Testbed,
    build_testbed,
)
from repro.nfv.topology import NfviTopology
from repro.nfv.traffic import TrafficModel
from repro.utils.rng import check_random_state, spawn_rngs

__all__ = [
    "ScenarioSpec",
    "register_scenario",
    "list_scenarios",
    "scenario_descriptions",
    "scenario_knobs",
    "build_scenario",
]


@dataclass
class ScenarioSpec:
    """One fully-configured workload scenario, ready to simulate.

    Attributes
    ----------
    name:
        Registry name the spec was built from.
    description:
        One-line operator-facing summary of the regime.
    testbed:
        Placed deployment (topology + monitored chain + background).
    injector:
        Fault injector to draw schedules from (``None`` = fault-free).
    simulator_kwargs:
        Extra keyword arguments for :class:`~repro.nfv.simulator.Simulator`
        (e.g. ``measurement_noise``).
    default_epochs:
        Suggested run length for a representative dataset.
    knobs:
        The resolved knob values the generator used (for reports).
    """

    name: str
    description: str
    testbed: Testbed
    injector: FaultInjector | None
    simulator_kwargs: dict = field(default_factory=dict)
    default_epochs: int = 2000
    knobs: dict = field(default_factory=dict)

    def stream(
        self,
        n_epochs: int | None = None,
        *,
        batch_epochs: int = 64,
        random_state=None,
    ) -> SimulationStream:
        """Simulate this scenario lazily, yielding epoch batches.

        The online counterpart of materializing a dataset from the
        spec: builds the scenario's simulator and returns a
        :class:`~repro.nfv.simulator.SimulationStream` over
        :class:`~repro.nfv.simulator.EpochBatch` slices.  The RNG
        discipline mirrors the dataset builders exactly — two child
        generators are spawned and the first (the testbed seed, unused
        here because the testbed is already built) is discarded — so
        streaming the full horizon and collecting reproduces
        :func:`repro.datasets.make_scenario_dataset` byte for byte
        under the same seed when driven through
        :func:`repro.datasets.stream_scenario_telemetry`.
        """
        if n_epochs is None:
            n_epochs = self.default_epochs
        rng = check_random_state(random_state)
        _tb_rng, sim_rng = spawn_rngs(rng, 2)
        sim = Simulator(
            self.testbed, random_state=sim_rng, **self.simulator_kwargs
        )
        return sim.stream(
            n_epochs, batch_epochs=batch_epochs, fault_injector=self.injector
        )


#: name -> (generator, description, default knobs)
_REGISTRY: dict[str, tuple] = {}


def register_scenario(name: str, description: str, **default_knobs):
    """Decorator registering ``fn(rng, **knobs) -> ScenarioSpec``.

    ``default_knobs`` document (and default) the tunable parameters of
    the scenario; callers may override any of them through
    :func:`build_scenario`.
    """

    def decorator(fn):
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} is already registered")
        _REGISTRY[name] = (fn, description, dict(default_knobs))
        return fn

    return decorator


def list_scenarios() -> list[str]:
    """Sorted names of every registered scenario."""
    return sorted(_REGISTRY)


def scenario_descriptions() -> dict[str, str]:
    """Mapping of scenario name to its one-line description."""
    return {name: entry[1] for name, entry in sorted(_REGISTRY.items())}


def scenario_knobs(name: str) -> dict:
    """Default knob values of one scenario (for docs and reports)."""
    _, _, knobs = _lookup(name)
    return dict(knobs)


def _lookup(name: str):
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {list_scenarios()}"
        ) from None


def build_scenario(name: str, *, random_state=None, **knobs) -> ScenarioSpec:
    """Build one scenario's :class:`ScenarioSpec` by registry name.

    Parameters
    ----------
    name:
        A name from :func:`list_scenarios`.
    random_state:
        Seed/generator for the stochastic parts of testbed construction
        (background-traffic phases, server speeds, ...).  The same seed
        reproduces the same spec exactly.
    knobs:
        Scenario-specific overrides; unknown knobs raise ``TypeError``
        so typos fail loudly.
    """
    fn, description, defaults = _lookup(name)
    unknown = set(knobs) - set(defaults)
    if unknown:
        raise TypeError(
            f"scenario {name!r} got unknown knobs {sorted(unknown)}; "
            f"accepted: {sorted(defaults)}"
        )
    resolved = {**defaults, **knobs}
    rng = check_random_state(random_state)
    spec = fn(rng, **resolved)
    spec.name = name
    spec.description = description
    spec.knobs = resolved
    return spec


def _spec(testbed, injector, simulator_kwargs=None, default_epochs=2000):
    """Internal helper: generators fill name/description via the registry."""
    return ScenarioSpec(
        name="",
        description="",
        testbed=testbed,
        injector=injector,
        simulator_kwargs=dict(simulator_kwargs or {}),
        default_epochs=default_epochs,
    )


# ----------------------------------------------------------------------
# the catalog
# ----------------------------------------------------------------------
@register_scenario(
    "baseline",
    "the paper's canonical testbed: mixed faults at a low rate",
    base_kpps=400.0,
    fault_rate=0.01,
)
def _baseline(rng, *, base_kpps, fault_rate):
    testbed = build_testbed(base_kpps=base_kpps, random_state=rng)
    return _spec(testbed, FaultInjector(rate=fault_rate))


@register_scenario(
    "bursty-traffic",
    "CDN-style load: frequent heavy-tailed flash crowds, surge faults",
    base_kpps=380.0,
    flash_crowd_rate=0.02,
    flash_magnitude=2.6,
    fault_rate=0.012,
)
def _bursty_traffic(rng, *, base_kpps, flash_crowd_rate, flash_magnitude, fault_rate):
    testbed = build_testbed(base_kpps=base_kpps, random_state=rng)
    testbed.traffic = TrafficModel(
        base_kpps=base_kpps,
        diurnal_amplitude=0.2,
        noise_sigma=0.15,
        flash_crowd_rate=flash_crowd_rate,
        flash_magnitude=flash_magnitude,
        flash_duration_epochs=20,
    )
    injector = FaultInjector(
        kinds=[FaultKind.TRAFFIC_SURGE, FaultKind.CPU_CONTENTION],
        rate=fault_rate,
        duration_range=(8, 30),
    )
    return _spec(testbed, injector)


@register_scenario(
    "diurnal",
    "ISP-style day/night swing: violations cluster at the daily peak",
    base_kpps=420.0,
    diurnal_amplitude=0.6,
    period_epochs=288,
    fault_rate=0.008,
)
def _diurnal(rng, *, base_kpps, diurnal_amplitude, period_epochs, fault_rate):
    testbed = build_testbed(base_kpps=base_kpps, random_state=rng)
    testbed.traffic = TrafficModel(
        base_kpps=base_kpps,
        diurnal_amplitude=diurnal_amplitude,
        period_epochs=period_epochs,
        noise_sigma=0.05,
        flash_crowd_rate=0.001,
    )
    return _spec(testbed, FaultInjector(rate=fault_rate))


@register_scenario(
    "fault-storm",
    "rollout gone wrong: short, frequent, severe faults of every kind",
    fault_rate=0.06,
    severity_range=(0.5, 1.0),
)
def _fault_storm(rng, *, fault_rate, severity_range):
    testbed = build_testbed(random_state=rng)
    injector = FaultInjector(
        rate=fault_rate,
        duration_range=(5, 20),
        severity_range=severity_range,
    )
    return _spec(testbed, injector)


@register_scenario(
    "cascading-overload",
    "dense co-location near the knee: contention faults cascade",
    base_kpps=450.0,
    n_background=4,
    fault_rate=0.015,
)
def _cascading_overload(rng, *, base_kpps, n_background, fault_rate):
    testbed = build_testbed(
        base_kpps=base_kpps, n_background=n_background, random_state=rng
    )
    injector = FaultInjector(
        kinds=[FaultKind.CPU_CONTENTION, FaultKind.TRAFFIC_SURGE],
        rate=fault_rate,
        duration_range=(10, 30),
        severity_range=(0.5, 0.9),
    )
    return _spec(testbed, injector)


@register_scenario(
    "noisy-telemetry",
    "degraded monitoring plane: 12% relative measurement noise",
    measurement_noise=0.12,
    fault_rate=0.01,
)
def _noisy_telemetry(rng, *, measurement_noise, fault_rate):
    testbed = build_testbed(random_state=rng)
    return _spec(
        testbed,
        FaultInjector(rate=fault_rate),
        simulator_kwargs={"measurement_noise": measurement_noise},
    )


@register_scenario(
    "long-chain",
    "an 8-VNF service chain spread over six servers, relaxed SLA",
    base_kpps=320.0,
    fault_rate=0.01,
)
def _long_chain(rng, *, base_kpps, fault_rate):
    topology = NfviTopology.leaf_spine(
        n_spine=2, n_leaf=2, servers_per_leaf=3, cpu_cores=8.0, mem_mb=16384.0
    )
    testbed = build_testbed(
        chain_types=(
            "firewall", "nat", "ids", "lb", "dpi", "wanopt", "cache",
            "transcoder",
        ),
        base_kpps=base_kpps,
        sla=SLA(max_latency_ms=5.0, max_loss_rate=0.01),
        topology=topology,
        random_state=rng,
    )
    return _spec(testbed, FaultInjector(rate=fault_rate))


@register_scenario(
    "heterogeneous-servers",
    "mixed-generation fleet: per-server CPU speeds in [0.6, 1.4]",
    speed_range=(0.6, 1.4),
    fault_rate=0.01,
)
def _heterogeneous_servers(rng, *, speed_range, fault_rate):
    lo, hi = speed_range
    if not 0.0 < lo <= hi:
        raise ValueError(f"bad speed_range {speed_range}")
    topology = NfviTopology.leaf_spine(
        n_spine=2, n_leaf=2, servers_per_leaf=2, cpu_cores=8.0, mem_mb=16384.0
    )
    for server_id in sorted(topology.servers):
        topology.servers[server_id].cpu_speed = float(rng.uniform(lo, hi))
    testbed = build_testbed(topology=topology, random_state=rng)
    return _spec(testbed, FaultInjector(rate=fault_rate))
