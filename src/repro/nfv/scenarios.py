"""Named, seedable workload scenarios for the NFV testbed.

The paper's evaluation runs on a single synthetic testbed shape; real
deployments see wildly different regimes (bursty CDN traffic, strong
diurnal ISP swings, fault storms during rollouts, heterogeneous server
fleets, ...).  An explainer that looks faithful under one regime may
fall apart under another, so every explainer/model pairing should be
stress-tested across a *catalog* of conditions.

This module is that catalog: a registry of scenario builders, each a
function of a random generator (plus scenario-specific knobs) that
returns a fully-configured :class:`ScenarioSpec` — a placed testbed, a
fault injector, and simulator parameters.  Everything downstream
(dataset builders, the matrix experiment runner, the CLI, benches)
refers to scenarios by name::

    from repro.nfv.scenarios import build_scenario, list_scenarios

    list_scenarios()
    # ['baseline', 'bursty-traffic', 'cascading-overload', ...]

    spec = build_scenario("fault-storm", random_state=7)
    sim = Simulator(spec.testbed, random_state=7, **spec.simulator_kwargs)
    result = sim.run(2000, fault_injector=spec.injector)

Since the scenario-grammar rework, the *source of truth* for the
catalog is :mod:`repro.nfv.grammar`: the 8 legacy regimes are
declarative :class:`~repro.nfv.grammar.recipe.ScenarioRecipe` objects
(see ``repro.nfv.grammar.catalog``), registered here through
:func:`register_recipe`.  The re-expression is byte-exact — golden
tests pin each recipe's :func:`repro.datasets.make_scenario_dataset`
output against hashes captured before the grammar existed.  Custom
function-style generators can still be registered with
:func:`register_scenario`.

Scenarios are deterministic: the same name and integer seed always
produce the same testbed, schedule distribution, and (through
:func:`repro.datasets.make_scenario_dataset`) byte-identical datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nfv.faults import FaultInjector
from repro.nfv.simulator import SimulationStream, Simulator, Testbed
from repro.utils.rng import check_random_state, spawn_rngs

__all__ = [
    "ScenarioSpec",
    "register_scenario",
    "register_recipe",
    "list_scenarios",
    "scenario_descriptions",
    "scenario_knobs",
    "scenario_recipe",
    "build_scenario",
]


@dataclass
class ScenarioSpec:
    """One fully-configured workload scenario, ready to simulate.

    Attributes
    ----------
    name:
        Registry name the spec was built from.
    description:
        One-line operator-facing summary of the regime.
    testbed:
        Placed deployment (topology + monitored chain + background).
    injector:
        Fault injector to draw schedules from (``None`` = fault-free).
    simulator_kwargs:
        Extra keyword arguments for :class:`~repro.nfv.simulator.Simulator`
        (e.g. ``measurement_noise``).
    default_epochs:
        Suggested run length for a representative dataset.
    knobs:
        The resolved knob values the generator used (for reports).
    """

    name: str
    description: str
    testbed: Testbed
    injector: FaultInjector | None
    simulator_kwargs: dict = field(default_factory=dict)
    default_epochs: int = 2000
    knobs: dict = field(default_factory=dict)

    def stream(
        self,
        n_epochs: int | None = None,
        *,
        batch_epochs: int = 64,
        random_state=None,
    ) -> SimulationStream:
        """Simulate this scenario lazily, yielding epoch batches.

        The online counterpart of materializing a dataset from the
        spec: builds the scenario's simulator and returns a
        :class:`~repro.nfv.simulator.SimulationStream` over
        :class:`~repro.nfv.simulator.EpochBatch` slices.  The RNG
        discipline mirrors the dataset builders exactly — two child
        generators are spawned and the first (the testbed seed, unused
        here because the testbed is already built) is discarded — so
        streaming the full horizon and collecting reproduces
        :func:`repro.datasets.make_scenario_dataset` byte for byte
        under the same seed when driven through
        :func:`repro.datasets.stream_scenario_telemetry`.
        """
        if n_epochs is None:
            n_epochs = self.default_epochs
        rng = check_random_state(random_state)
        _tb_rng, sim_rng = spawn_rngs(rng, 2)
        sim = Simulator(
            self.testbed, random_state=sim_rng, **self.simulator_kwargs
        )
        return sim.stream(
            n_epochs, batch_epochs=batch_epochs, fault_injector=self.injector
        )


#: name -> (builder, description, default knobs)
_REGISTRY: dict[str, tuple] = {}

#: name -> ScenarioRecipe, for scenarios registered through
#: :func:`register_recipe` (function-style scenarios have no recipe).
_RECIPES: dict = {}


def register_scenario(name: str, description: str, **default_knobs):
    """Decorator registering ``fn(rng, **knobs) -> ScenarioSpec``.

    ``default_knobs`` document (and default) the tunable parameters of
    the scenario; callers may override any of them through
    :func:`build_scenario`.
    """

    def decorator(fn):
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} is already registered")
        _REGISTRY[name] = (fn, description, dict(default_knobs))
        return fn

    return decorator


def register_recipe(recipe, *, replace: bool = False) -> None:
    """Register a grammar :class:`ScenarioRecipe` as a named scenario.

    The recipe's ``knob_paths`` become the scenario's tunable knobs
    (``build_scenario(name, knob=value)`` routes overrides through
    :meth:`ScenarioRecipe.with_knobs`), and the recipe itself stays
    reachable via :func:`scenario_recipe` for mutation and search.

    ``replace=True`` allows re-registration under an existing name —
    used when reloading generated-recipe stores, never by the catalog.
    """
    from repro.nfv.grammar.recipe import ScenarioRecipe

    if not isinstance(recipe, ScenarioRecipe):
        raise TypeError(
            f"recipe must be a ScenarioRecipe, got {type(recipe).__name__}"
        )
    if recipe.name in _REGISTRY and not replace:
        raise ValueError(f"scenario {recipe.name!r} is already registered")

    def _builder(rng, **knobs):
        return recipe.with_knobs(**knobs).build(rng)

    _REGISTRY[recipe.name] = (
        _builder,
        recipe.description,
        recipe.knob_defaults(),
    )
    _RECIPES[recipe.name] = recipe


def scenario_recipe(name: str):
    """The :class:`ScenarioRecipe` behind one registered scenario.

    Raises ``KeyError`` for unknown scenarios and for function-style
    scenarios that were registered without a recipe.
    """
    _lookup(name)  # raises the canonical unknown-scenario KeyError
    try:
        return _RECIPES[name]
    except KeyError:
        raise KeyError(
            f"scenario {name!r} is not recipe-backed; recipe-backed "
            f"scenarios: {sorted(_RECIPES)}"
        ) from None


def list_scenarios() -> list[str]:
    """Sorted names of every registered scenario."""
    return sorted(_REGISTRY)


def scenario_descriptions() -> dict[str, str]:
    """Mapping of scenario name to its one-line description."""
    return {name: entry[1] for name, entry in sorted(_REGISTRY.items())}


def scenario_knobs(name: str) -> dict:
    """Default knob values of one scenario (for docs and reports)."""
    _, _, knobs = _lookup(name)
    return dict(knobs)


def _lookup(name: str):
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {list_scenarios()}"
        ) from None


def build_scenario(name: str, *, random_state=None, **knobs) -> ScenarioSpec:
    """Build one scenario's :class:`ScenarioSpec` by registry name.

    Parameters
    ----------
    name:
        A name from :func:`list_scenarios`.
    random_state:
        Seed/generator for the stochastic parts of testbed construction
        (background-traffic phases, server speeds, ...).  The same seed
        reproduces the same spec exactly.
    knobs:
        Scenario-specific overrides; unknown knobs raise ``TypeError``
        so typos fail loudly.
    """
    fn, description, defaults = _lookup(name)
    unknown = set(knobs) - set(defaults)
    if unknown:
        raise TypeError(
            f"scenario {name!r} got unknown knobs {sorted(unknown)}; "
            f"accepted: {sorted(defaults)}"
        )
    resolved = {**defaults, **knobs}
    rng = check_random_state(random_state)
    spec = fn(rng, **resolved)
    spec.name = name
    spec.description = description
    spec.knobs = resolved
    return spec


# ----------------------------------------------------------------------
# the catalog: grammar recipes, registered at import time
# ----------------------------------------------------------------------
# Imported at the bottom so ScenarioSpec and the registry exist before
# the grammar package (whose recipes lower to ScenarioSpec) loads.
from repro.nfv.grammar.catalog import CATALOG_RECIPES  # noqa: E402

for _recipe in CATALOG_RECIPES.values():
    register_recipe(_recipe)
del _recipe
