"""NFV substrate: topology, VNFs, service chains, traffic, faults, and
an epoch-based performance simulator that produces labelled telemetry.

This package replaces the production NFV traces the paper would have
used (see DESIGN.md "Substitutions"): every telemetry feature is
produced by an explicit queueing/contention model, so the causal path
from features to SLA outcomes is known — which is what the explanation
experiments need.

Typical usage::

    from repro.nfv import (
        build_testbed, FaultInjector, Simulator, TrafficModel,
    )

    testbed = build_testbed(random_state=7)
    sim = Simulator(testbed, random_state=7)
    result = sim.run(n_epochs=2000)
    X = result.features          # FeatureMatrix with named columns
    y = result.sla_violation     # binary labels
"""

from repro.nfv.faults import FaultEvent, FaultInjector, FaultKind
from repro.nfv.placement import (
    BestFitPlacement,
    FirstFitPlacement,
    PlacementError,
    RandomPlacement,
    WorstFitPlacement,
)
from repro.nfv.queueing import (
    mg1_waiting_time,
    mm1_queue_length,
    mm1_waiting_time,
    mmc_waiting_time,
    mm1k_loss_probability,
)
from repro.nfv.scenarios import (
    ScenarioSpec,
    build_scenario,
    list_scenarios,
    register_recipe,
    register_scenario,
    scenario_descriptions,
    scenario_knobs,
    scenario_recipe,
)
from repro.nfv.sfc import SLA, ServiceFunctionChain
from repro.nfv.simulator import SimulationResult, Simulator, Testbed, build_testbed
from repro.nfv.topology import NfviTopology, Server
from repro.nfv.traffic import TrafficModel
from repro.nfv.vnf import VNF_CATALOG, VNFInstance, VNFProfile

__all__ = [
    "BestFitPlacement",
    "build_scenario",
    "build_testbed",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FirstFitPlacement",
    "list_scenarios",
    "mg1_waiting_time",
    "mm1_queue_length",
    "mm1_waiting_time",
    "mm1k_loss_probability",
    "mmc_waiting_time",
    "NfviTopology",
    "PlacementError",
    "RandomPlacement",
    "register_recipe",
    "register_scenario",
    "scenario_descriptions",
    "scenario_knobs",
    "scenario_recipe",
    "ScenarioSpec",
    "Server",
    "ServiceFunctionChain",
    "SimulationResult",
    "Simulator",
    "SLA",
    "Testbed",
    "TrafficModel",
    "VNF_CATALOG",
    "VNFInstance",
    "VNFProfile",
    "WorstFitPlacement",
]
