"""Service function chains and SLA specifications."""

from __future__ import annotations

from dataclasses import dataclass

from repro.nfv.vnf import VNFInstance

__all__ = ["SLA", "ServiceFunctionChain"]


@dataclass(frozen=True)
class SLA:
    """Service-level agreement for one chain.

    Attributes
    ----------
    max_latency_ms:
        End-to-end latency bound; exceeding it in an epoch is a
        violation.
    max_loss_rate:
        Packet-loss bound (fraction in [0, 1]).
    """

    max_latency_ms: float = 5.0
    max_loss_rate: float = 0.01

    def __post_init__(self):
        if self.max_latency_ms <= 0:
            raise ValueError(f"max_latency_ms must be positive, got {self.max_latency_ms}")
        if not 0.0 <= self.max_loss_rate < 1.0:
            raise ValueError(f"max_loss_rate must be in [0, 1), got {self.max_loss_rate}")

    def is_violated(self, latency_ms: float, loss_rate: float) -> bool:
        """Whether an epoch's measurements breach this SLA."""
        return latency_ms > self.max_latency_ms or loss_rate > self.max_loss_rate


class ServiceFunctionChain:
    """An ordered sequence of VNF instances traffic must traverse.

    Parameters
    ----------
    chain_id:
        Unique name.
    instances:
        VNF instances in traversal order.
    sla:
        The SLA this chain must honour.
    """

    def __init__(self, chain_id: str, instances: list[VNFInstance], sla: SLA):
        if not instances:
            raise ValueError(f"chain {chain_id!r} must contain at least one VNF")
        ids = [inst.instance_id for inst in instances]
        if len(set(ids)) != len(ids):
            raise ValueError(f"chain {chain_id!r} has duplicate instance ids")
        self.chain_id = chain_id
        self.instances = list(instances)
        self.sla = sla

    @property
    def length(self) -> int:
        return len(self.instances)

    @property
    def vnf_types(self) -> list[str]:
        return [inst.vnf_type for inst in self.instances]

    def bottleneck_capacity_kpps(self, cpu_speed: float = 1.0) -> float:
        """Chain capacity ignoring contention = min per-VNF capacity."""
        return min(
            inst.nominal_capacity_kpps(cpu_speed) for inst in self.instances
        )

    def propagation_latency_us(self, topology) -> float:
        """Sum of inter-VNF propagation latencies along the chain."""
        total = 0.0
        for a, b in zip(self.instances[:-1], self.instances[1:]):
            if a.server_id is None or b.server_id is None:
                raise ValueError(
                    f"chain {self.chain_id!r} has unplaced instances; "
                    "run placement first"
                )
            total += topology.path_latency_us(a.server_id, b.server_id)
        return total

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"ServiceFunctionChain({self.chain_id!r}, "
            f"vnfs={'->'.join(self.vnf_types)})"
        )
