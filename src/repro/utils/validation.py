"""Input validation helpers shared by estimators and explainers."""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_array",
    "check_consistent_length",
    "check_fitted",
    "check_X_y",
    "NotFittedError",
]


class NotFittedError(RuntimeError):
    """Raised when ``predict``/``transform`` is called before ``fit``."""


def check_array(
    X,
    *,
    ndim: int = 2,
    dtype=np.float64,
    allow_nan: bool = False,
    name: str = "X",
) -> np.ndarray:
    """Coerce ``X`` to a numpy array and validate its shape and contents.

    Parameters
    ----------
    X:
        Array-like input.
    ndim:
        Required number of dimensions.  A 1-D input is promoted to a row
        matrix only when ``ndim == 2`` and the input is 1-D is rejected —
        callers that want promotion should do it explicitly.
    dtype:
        Target dtype (``None`` keeps the input dtype).
    allow_nan:
        Whether NaN/inf values are acceptable.
    name:
        Name used in error messages.
    """
    arr = np.asarray(X, dtype=dtype)
    if arr.ndim != ndim:
        raise ValueError(
            f"{name} must be {ndim}-dimensional, got shape {arr.shape}"
        )
    if arr.size == 0:
        raise ValueError(f"{name} is empty (shape {arr.shape})")
    if not allow_nan and arr.dtype.kind == "f" and not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains NaN or infinite values")
    return arr


def check_consistent_length(*arrays) -> None:
    """Raise ``ValueError`` if the arrays have different first dimensions."""
    lengths = [len(a) for a in arrays if a is not None]
    if len(set(lengths)) > 1:
        raise ValueError(f"inconsistent sample counts: {lengths}")


def check_X_y(X, y, *, y_numeric: bool = False):
    """Validate a feature matrix / target vector pair.

    Returns the validated ``(X, y)`` as numpy arrays with matching first
    dimension.  ``y`` is flattened to 1-D.
    """
    X = check_array(X, ndim=2, name="X")
    y = np.asarray(y)
    if y.ndim == 2 and y.shape[1] == 1:
        y = y.ravel()
    if y.ndim != 1:
        raise ValueError(f"y must be 1-dimensional, got shape {y.shape}")
    check_consistent_length(X, y)
    if y_numeric:
        y = y.astype(np.float64)
        if not np.all(np.isfinite(y)):
            raise ValueError("y contains NaN or infinite values")
    return X, y


def check_fitted(estimator, attributes) -> None:
    """Raise :class:`NotFittedError` unless all ``attributes`` are set.

    Parameters
    ----------
    estimator:
        Any object following the fit/predict convention.
    attributes:
        Attribute name or list of names that ``fit`` must have set (by
        convention, names ending in an underscore).
    """
    if isinstance(attributes, str):
        attributes = [attributes]
    missing = [a for a in attributes if getattr(estimator, a, None) is None]
    if missing:
        raise NotFittedError(
            f"{type(estimator).__name__} is not fitted yet "
            f"(missing {', '.join(missing)}); call fit() first"
        )
