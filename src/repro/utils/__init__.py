"""Shared utilities: seeded RNG helpers, array validation, tabular data.

These helpers are intentionally small and dependency-free (numpy only) so
that every other subpackage can rely on them without import cycles.
"""

from repro.utils.rng import check_random_state, spawn_rngs
from repro.utils.tabular import FeatureMatrix
from repro.utils.validation import (
    check_array,
    check_consistent_length,
    check_fitted,
    check_X_y,
)

__all__ = [
    "FeatureMatrix",
    "check_array",
    "check_consistent_length",
    "check_fitted",
    "check_random_state",
    "check_X_y",
    "spawn_rngs",
]
