"""Random-number-generator plumbing.

All stochastic components in this library accept a ``random_state``
argument and normalize it through :func:`check_random_state`, so that
every experiment is reproducible from a single integer seed.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Generator",
    "check_random_state",
    "derive_seed",
    "spawn_rngs",
    "spawn_seeds",
]

#: The generator type every helper here returns, re-exported so other
#: modules can annotate and isinstance-check without spelling
#: ``np.random`` themselves — this module is the one sanctioned home of
#: that surface (enforced by ``repro lint`` rule D102).
Generator = np.random.Generator


def check_random_state(random_state=None) -> np.random.Generator:
    """Normalize ``random_state`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    random_state:
        ``None`` (fresh nondeterministic generator), an ``int`` seed, an
        existing :class:`numpy.random.Generator` (returned unchanged), or
        a :class:`numpy.random.SeedSequence`.

    Returns
    -------
    numpy.random.Generator

    Raises
    ------
    TypeError
        If ``random_state`` is of an unsupported type.
    """
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        if random_state < 0:
            raise ValueError(f"seed must be non-negative, got {random_state}")
        return np.random.default_rng(int(random_state))
    if isinstance(random_state, np.random.SeedSequence):
        return np.random.default_rng(random_state)
    raise TypeError(
        "random_state must be None, an int, a numpy Generator or a "
        f"SeedSequence, got {type(random_state).__name__}"
    )


def spawn_seeds(random_state, n: int) -> list[int]:
    """Derive ``n`` independent integer child seeds from one seed.

    The picklable sibling of :func:`spawn_rngs`: plain non-negative
    ``int`` seeds travel across process boundaries and can be handed to
    any ``random_state`` argument in this library, so a parallel
    executor can give every shard its own deterministic stream without
    ever sharing mutable generator state between workers.  Child seeds
    depend only on ``random_state`` and the shard index — never on the
    backend, worker count, or completion order — which is what makes
    serial, threaded, and multiprocess runs reproduce each other.

    ``random_state`` may be an ``int`` (fully deterministic children),
    a :class:`~numpy.random.SeedSequence`, a live Generator (consumes
    one draw), or ``None`` (fresh entropy).
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(random_state, np.random.SeedSequence):
        base = random_state
    elif isinstance(random_state, (int, np.integer)):
        if random_state < 0:
            raise ValueError(f"seed must be non-negative, got {random_state}")
        base = np.random.SeedSequence(int(random_state))
    elif isinstance(random_state, np.random.Generator):
        base = np.random.SeedSequence(
            int(random_state.integers(0, 2**63 - 1))
        )
    elif random_state is None:
        base = np.random.SeedSequence()
    else:
        raise TypeError(
            "random_state must be None, an int, a numpy Generator or a "
            f"SeedSequence, got {type(random_state).__name__}"
        )
    return [
        int(child.generate_state(1, dtype=np.uint64)[0] >> np.uint64(1))
        for child in base.spawn(n)
    ]


def derive_seed(root, *path) -> int:
    """One integer child seed at an addressed point under ``root``.

    Where :func:`spawn_seeds` derives a *vector* of children (shard
    ``i`` of ``n``), this derives a single child at an arbitrary
    integer coordinate path — ``derive_seed(seed, site, k, index)`` is
    a pure function of its arguments, independent of how many other
    coordinates are ever visited.  That is the primitive the chaos
    injector needs: the decision "does fault ``k`` fire at task
    ``index``?" must not shift when another fault is added or another
    task runs first.
    """
    parts = []
    for value in (root, *path):
        if not isinstance(value, (int, np.integer)):
            raise TypeError(
                f"derive_seed takes integers, got {type(value).__name__}"
            )
        if value < 0:
            raise ValueError(f"seed path must be non-negative, got {value}")
        parts.append(int(value))
    base = np.random.SeedSequence(entropy=parts)
    return int(base.generate_state(1, dtype=np.uint64)[0] >> np.uint64(1))


def spawn_rngs(random_state, n: int) -> list[np.random.Generator]:
    """Create ``n`` statistically independent child generators.

    Useful for giving each member of an ensemble (trees in a forest,
    repetitions of a permutation test) its own stream while remaining
    reproducible from one seed.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    rng = check_random_state(random_state)
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
