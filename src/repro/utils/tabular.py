"""A minimal named-column feature matrix.

The NFV telemetry pipeline produces feature vectors whose *names* carry
domain meaning (``vnf2_ids_cpu_util``), and the explainers must report
attributions against those names.  ``FeatureMatrix`` bundles a float
matrix with its column names without pulling in a dataframe dependency.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["FeatureMatrix"]


class FeatureMatrix:
    """A 2-D float array with named columns.

    Parameters
    ----------
    values:
        Array of shape ``(n_samples, n_features)``.
    feature_names:
        One name per column; must be unique.
    """

    def __init__(self, values, feature_names: Sequence[str]):
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2:
            raise ValueError(f"values must be 2-D, got shape {values.shape}")
        names = list(feature_names)
        if len(names) != values.shape[1]:
            raise ValueError(
                f"{len(names)} feature names for {values.shape[1]} columns"
            )
        if len(set(names)) != len(names):
            seen, dups = set(), []
            for n in names:
                if n in seen:
                    dups.append(n)
                seen.add(n)
            raise ValueError(f"duplicate feature names: {dups}")
        self.values = values
        self.feature_names = names
        self._index = {n: i for i, n in enumerate(names)}

    # ------------------------------------------------------------------
    @property
    def n_samples(self) -> int:
        return self.values.shape[0]

    @property
    def n_features(self) -> int:
        return self.values.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        return self.values.shape

    def __len__(self) -> int:
        return self.n_samples

    def column(self, name: str) -> np.ndarray:
        """Return the column named ``name`` as a 1-D array."""
        try:
            return self.values[:, self._index[name]]
        except KeyError:
            raise KeyError(
                f"unknown feature {name!r}; known: {self.feature_names[:5]}..."
            ) from None

    def column_index(self, name: str) -> int:
        """Return the positional index of the column named ``name``."""
        if name not in self._index:
            raise KeyError(f"unknown feature {name!r}")
        return self._index[name]

    def select(self, names: Sequence[str]) -> "FeatureMatrix":
        """Return a new matrix restricted to ``names`` (in that order)."""
        idx = [self.column_index(n) for n in names]
        return FeatureMatrix(self.values[:, idx], list(names))

    def take(self, rows) -> "FeatureMatrix":
        """Return a new matrix with only the given ``rows``."""
        return FeatureMatrix(self.values[rows], self.feature_names)

    def with_row(self, row) -> "FeatureMatrix":
        """Return a single-row matrix sharing this matrix's schema."""
        row = np.asarray(row, dtype=np.float64).reshape(1, -1)
        if row.shape[1] != self.n_features:
            raise ValueError(
                f"row has {row.shape[1]} values, expected {self.n_features}"
            )
        return FeatureMatrix(row, self.feature_names)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"FeatureMatrix(n_samples={self.n_samples}, "
            f"n_features={self.n_features})"
        )
