"""The paper's contribution: explainable AI for NFV.

* :mod:`repro.core.explainers` — post-hoc attribution methods
  (KernelSHAP, exact Shapley, TreeSHAP, LinearSHAP, LIME, permutation
  importance, PDP/ICE, global surrogate trees, counterfactuals).
* :mod:`repro.core.evaluation` — explanation-quality measures
  (deletion/insertion faithfulness, stability, cross-method agreement,
  Shapley axiom checks).
* :mod:`repro.core.pipeline` / :mod:`repro.core.rootcause` /
  :mod:`repro.core.report` — the NFV-facing layer that turns feature
  attributions into per-VNF / per-resource diagnoses for operators.
* :mod:`repro.core.stream` — online diagnosis over live telemetry:
  sliding windows, cadenced refits, batched windowed explanation, and
  Page–Hinkley drift alarms.
"""

from repro.core.cache import cache_stats, clear_cache, get_cache
from repro.core.executor import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    available_workers,
    get_executor,
)
from repro.core.explainers import (
    BatchExplanation,
    CounterfactualExplainer,
    ExactShapleyExplainer,
    Explanation,
    GlobalExplanation,
    IntegratedGradientsExplainer,
    InterventionalTreeShapExplainer,
    KernelShapExplainer,
    LimeExplainer,
    LinearShapExplainer,
    PartialDependence,
    PermutationImportance,
    SamplingShapleyExplainer,
    SurrogateTreeExplainer,
    TreeShapExplainer,
    make_explainer,
    model_output_fn,
)
from repro.core.matrix import (
    MatrixCell,
    MatrixReport,
    default_model_factories,
    run_scenario_matrix,
)
from repro.core.pipeline import NFVDiagnosis, NFVExplainabilityPipeline
from repro.core.rootcause import RootCauseEvaluator, vnf_attribution_scores
from repro.core.search import (
    SearchCandidate,
    SearchResult,
    adversarial_score,
    search_scenarios,
)
from repro.core.stream import (
    PageHinkley,
    StreamingDiagnosisEngine,
    StreamReport,
    StreamWindow,
)

__all__ = [
    "available_workers",
    "BatchExplanation",
    "cache_stats",
    "clear_cache",
    "CounterfactualExplainer",
    "default_model_factories",
    "ExactShapleyExplainer",
    "Explanation",
    "get_cache",
    "get_executor",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "GlobalExplanation",
    "IntegratedGradientsExplainer",
    "InterventionalTreeShapExplainer",
    "KernelShapExplainer",
    "LimeExplainer",
    "LinearShapExplainer",
    "make_explainer",
    "MatrixCell",
    "MatrixReport",
    "model_output_fn",
    "NFVDiagnosis",
    "run_scenario_matrix",
    "NFVExplainabilityPipeline",
    "PageHinkley",
    "PartialDependence",
    "StreamingDiagnosisEngine",
    "StreamReport",
    "StreamWindow",
    "PermutationImportance",
    "RootCauseEvaluator",
    "SamplingShapleyExplainer",
    "SearchCandidate",
    "SearchResult",
    "adversarial_score",
    "search_scenarios",
    "SurrogateTreeExplainer",
    "TreeShapExplainer",
    "vnf_attribution_scores",
]
