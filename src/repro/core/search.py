"""Deterministic adversarial scenario search.

The scenario grammar (:mod:`repro.nfv.grammar`) makes regimes mutable;
this module makes them *hunted*.  Starting from the catalog recipes, a
seeded evolutionary loop mutates recipes, rejects mutants that fail the
acceptance harness (recorded, by named check), evaluates the accepted
ones through :func:`repro.core.matrix.run_scenario_matrix` (so the
whole generation fans out across the parallel executor), and scores
each candidate for *explainer failure*: faithfulness collapse (deletion
AUC falling toward the shuffled-attribution control) plus
cross-explainer disagreement.  The worst offenders that beat every
catalog baseline are emitted as named, seeded, acceptance-checked
recipes — the regimes where attribution quality degrades, found
systematically instead of by hand.

Everything is a pure function of the integer seed: mutation draws come
from :func:`repro.utils.rng.spawn_seeds` hierarchies, evaluation rides
the matrix runner's byte-identical-across-backends contract, and the
trace (:meth:`SearchResult.format_trace`) is byte-identical across
serial/thread/process backends — golden-pinned in
``tests/core/test_search.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.executor import get_executor
from repro.core.matrix import default_model_factories, run_scenario_matrix
from repro.nfv.grammar import accept_recipe, catalog_recipes
from repro.nfv.grammar.errors import RecipeValidationError
from repro.nfv.grammar.recipe import ScenarioRecipe
from repro.utils.rng import check_random_state, spawn_seeds

__all__ = [
    "SearchCandidate",
    "SearchResult",
    "adversarial_score",
    "search_scenarios",
]


def adversarial_score(cells) -> float:
    """How badly explainers fail on one scenario's matrix cells.

    ``-(mean faithfulness margin) - 0.5 * (mean explainer agreement)``,
    where the faithfulness margin is ``deletion_auc -
    random_deletion_auc`` (how much better than shuffled attributions
    the explainer ranks features) and agreement is the mean pairwise
    Spearman across explainers (0 when only one explainer ran).
    Higher = worse explainability = more adversarial.
    """
    cells = list(cells)
    if not cells:
        raise ValueError("adversarial_score needs at least one cell")
    margins = [c.deletion_auc - c.random_deletion_auc for c in cells]
    agreements = [
        c.agreement_spearman
        for c in cells
        if c.agreement_spearman is not None
    ]
    faith_margin = sum(margins) / len(margins)
    agreement = sum(agreements) / len(agreements) if agreements else 0.0
    return float(-faith_margin - 0.5 * agreement)


@dataclass
class SearchCandidate:
    """One recipe the search created or evaluated.

    ``status`` is ``"catalog"`` (generation-0 baseline), ``"accepted"``
    (mutant that passed acceptance and was evaluated), or
    ``"rejected:<check>"`` (mutant refused by the acceptance harness,
    named after the failed check — never evaluated).
    """

    recipe: ScenarioRecipe
    generation: int
    parent: str | None = None
    status: str = "accepted"
    score: float | None = None

    @property
    def name(self) -> str:
        return self.recipe.name


@dataclass
class SearchResult:
    """Everything one :func:`search_scenarios` run produced."""

    candidates: list[SearchCandidate]
    winners: list[SearchCandidate]
    baseline_worst: float
    baseline_worst_name: str
    seed: int
    generations: int
    population: int
    extras: dict = field(default_factory=dict)

    def winner_recipes(self) -> list[ScenarioRecipe]:
        """The winning recipes, worst offender first."""
        return [candidate.recipe for candidate in self.winners]

    def format_trace(self) -> str:
        """Deterministic run trace — the cross-backend comparison (and
        golden) surface, so no timing and no environment info."""
        lines = [
            "adversarial scenario search: "
            f"seed={self.seed} generations={self.generations} "
            f"population={self.population}",
        ]
        by_generation: dict[int, list[SearchCandidate]] = {}
        for candidate in self.candidates:
            by_generation.setdefault(candidate.generation, []).append(
                candidate
            )
        for generation in sorted(by_generation):
            title = (
                "gen 0 (catalog baselines)"
                if generation == 0
                else f"gen {generation}"
            )
            lines.append(f"{title}:")
            for c in by_generation[generation]:
                score = "-" if c.score is None else f"{c.score:+.6f}"
                parent = "" if c.parent is None else f" parent={c.parent}"
                lines.append(
                    f"  {c.name:<24} {c.status:<28} score={score}{parent}"
                )
        lines.append(
            f"worst catalog baseline: {self.baseline_worst_name} "
            f"(score={self.baseline_worst:+.6f})"
        )
        lines.append(f"winners ({len(self.winners)}):")
        for c in self.winners:
            lines.append(
                f"  {c.name:<24} score={c.score:+.6f} parent={c.parent}"
            )
        if not self.winners:
            lines.append("  (no generated recipe beat the catalog)")
        return "\n".join(lines) + "\n"


def _evaluate(recipes, *, matrix_kwargs) -> tuple:
    """Score each recipe with one matrix sweep; (name -> score, extras)."""
    try:
        report = run_scenario_matrix(recipes, **matrix_kwargs)
    except ValueError as err:
        if "2 classes" not in str(err):
            raise
        # The acceptance probe guards *mutants* against one-class data,
        # but the evaluation sweep runs at its own (larger) horizon and
        # seed — at very small n_epochs even a catalog regime can come
        # out single-class there.  Name the fix instead of leaking the
        # model's label-encoding error.
        n_epochs = matrix_kwargs.get("n_epochs")
        raise ValueError(
            f"evaluation sweep produced one-class data at "
            f"n_epochs={n_epochs} for one of "
            f"{sorted(r.name for r in recipes)}; raise n_epochs (catalog "
            f"regimes need a few hundred epochs to express both SLA "
            f"classes)"
        ) from err
    by_name: dict[str, list] = {}
    for cell in report.cells:
        by_name.setdefault(cell.scenario, []).append(cell)
    scores = {
        name: adversarial_score(cells) for name, cells in by_name.items()
    }
    return scores, dict(report.extras)


def search_scenarios(
    *,
    seed: int = 0,
    generations: int = 2,
    population: int = 6,
    top_k: int = 3,
    parents=None,
    explainers=("tree_shap", "lime"),
    models=None,
    n_epochs: int = 600,
    n_explain: int = 6,
    accept_probe_epochs: int = 512,
    backend: str = "auto",
    workers: int | None = None,
    progress=None,
) -> SearchResult:
    """Hunt for scenario recipes where explainers fail.

    Parameters
    ----------
    seed:
        The single integer everything derives from: parent selection,
        mutation draws, acceptance probes, and the matrix evaluations.
        Same seed — same trace, byte for byte, on every backend.
    generations, population:
        Mutation rounds, and mutants created per round.
    top_k:
        Max winners to emit.
    parents:
        Starting recipes: ``None`` (the full catalog), or an iterable
        of catalog names and/or :class:`ScenarioRecipe` objects.
    explainers, models, n_epochs, n_explain:
        Evaluation matrix configuration, passed to
        :func:`~repro.core.matrix.run_scenario_matrix`.  At least two
        explainers are needed for the disagreement term.  ``models``
        defaults to the random forest alone (the default explainers
        include ``tree_shap``, which needs a tree model).
    accept_probe_epochs:
        Probe length for the acceptance harness each mutant must pass.
    backend, workers:
        Parallel executor configuration for the matrix sweeps (one
        sweep per generation, sharded per candidate × model).
    progress:
        Optional ``callable(str)`` receiving one line per generation.

    Returns
    -------
    SearchResult
        All candidates (with per-check rejection statuses), and the
        accepted generated recipes that scored *strictly worse* than
        every catalog baseline, worst first (max ``top_k``).
    """
    if generations < 1:
        raise ValueError(f"generations must be >= 1, got {generations}")
    if population < 1:
        raise ValueError(f"population must be >= 1, got {population}")
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")

    catalog = catalog_recipes()
    if parents is None:
        parent_recipes = list(catalog.values())
    else:
        parent_recipes = []
        for parent in parents:
            if isinstance(parent, ScenarioRecipe):
                parent_recipes.append(parent)
            else:
                try:
                    parent_recipes.append(catalog[parent])
                except KeyError:
                    raise KeyError(
                        f"unknown catalog recipe {parent!r}; "
                        f"available: {sorted(catalog)}"
                    ) from None
    if not parent_recipes:
        raise ValueError("parents must not be empty")

    if models is None:
        models = {
            "random_forest": default_model_factories()["random_forest"]
        }

    def emit(line: str) -> None:
        if progress is not None:
            progress(line)

    # One seed per generation (index 0 feeds the acceptance probes).
    gen_seeds = spawn_seeds(seed, generations + 1)
    accept_seed = gen_seeds[0]

    emit(
        f"evaluating {len(parent_recipes)} catalog baseline(s) "
        f"({n_epochs} epochs each)"
    )
    # One executor for the whole search: each generation's matrix sweep
    # reuses the same pool instead of paying creation/teardown per
    # generation, and the context manager keeps an exception anywhere
    # in the loop (a one-class evaluation sweep, a rejected seed) from
    # leaking pooled workers.
    with get_executor(backend, workers) as executor:
        matrix_kwargs = dict(
            models=models,
            explainers=tuple(explainers),
            n_epochs=n_epochs,
            n_explain=n_explain,
            random_state=seed,
            executor=executor,
        )
        scores, extras = _evaluate(
            parent_recipes, matrix_kwargs=matrix_kwargs
        )
        candidates = [
            SearchCandidate(
                recipe=recipe,
                generation=0,
                status="catalog",
                score=scores[recipe.name],
            )
            for recipe in parent_recipes
        ]
        baseline_worst_candidate = max(
            candidates, key=lambda c: (c.score, c.name)
        )
        pool = list(candidates)

        for generation in range(1, generations + 1):
            child_seeds = spawn_seeds(gen_seeds[generation], population)
            accepted: list[SearchCandidate] = []
            for i, child_seed in enumerate(child_seeds):
                rng = check_random_state(child_seed)
                # Tournament of two: prefer the worse-scoring (more
                # adversarial) parent; rejected mutants never enter
                # `pool`, so selection only ever draws from scored
                # candidates.
                a = pool[int(rng.integers(0, len(pool)))]
                b = pool[int(rng.integers(0, len(pool)))]
                parent = a if (a.score, a.name) >= (b.score, b.name) else b
                child_recipe = replace(
                    parent.recipe.mutate(rng),
                    name=f"adv-g{generation}c{i}",
                    description=(
                        f"adversarial mutant of {parent.name} "
                        f"(generation {generation}, search seed {seed})"
                    ),
                )
                candidate = SearchCandidate(
                    recipe=child_recipe,
                    generation=generation,
                    parent=parent.name,
                )
                try:
                    accept_recipe(
                        child_recipe,
                        probe_epochs=accept_probe_epochs,
                        random_state=accept_seed,
                    )
                except RecipeValidationError as exc:
                    candidate.status = f"rejected:{exc.check}"
                    candidates.append(candidate)
                    continue
                candidates.append(candidate)
                accepted.append(candidate)
            emit(
                f"gen {generation}: {len(accepted)}/{population} mutants "
                "accepted, evaluating"
            )
            if accepted:
                scores, extras = _evaluate(
                    [c.recipe for c in accepted],
                    matrix_kwargs=matrix_kwargs,
                )
                for candidate in accepted:
                    candidate.score = scores[candidate.name]
                pool.extend(accepted)

    generated = [
        c
        for c in candidates
        if c.generation > 0
        and c.status == "accepted"
        and c.score is not None
        and c.score > baseline_worst_candidate.score
    ]
    winners = sorted(generated, key=lambda c: (-c.score, c.name))[:top_k]
    emit(
        f"{len(winners)} winner(s) beat the worst catalog baseline "
        f"({baseline_worst_candidate.name})"
    )

    return SearchResult(
        candidates=candidates,
        winners=winners,
        baseline_worst=baseline_worst_candidate.score,
        baseline_worst_name=baseline_worst_candidate.name,
        seed=seed,
        generations=generations,
        population=population,
        extras=extras,
    )
