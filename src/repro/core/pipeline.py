"""The end-to-end XAI-for-NFV pipeline.

Ties everything together the way the paper envisions: telemetry dataset
-> trained predictor -> per-prediction explanation -> NFV-domain
diagnosis (which VNF, which resource, what to do about it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.explainers import make_explainer, model_output_fn
from repro.core.report import format_local_report, format_vnf_table
from repro.core.rootcause import rank_vnfs, vnf_attribution_scores
from repro.ml.model_selection import train_test_split
from repro.nfv.telemetry import PER_VNF_METRICS, vnf_of_feature

__all__ = ["NFVDiagnosis", "NFVExplainabilityPipeline"]


@dataclass
class NFVDiagnosis:
    """A fully-resolved diagnosis for one telemetry sample.

    Attributes
    ----------
    prediction:
        Model score (e.g. violation probability or margin).
    alert:
        Whether the score crossed the pipeline threshold.
    explanation:
        The raw :class:`~repro.core.explainers.Explanation`.
    vnf_scores:
        Aggregated |attribution| per VNF index.
    vnf_ranking:
        VNF indices, most suspicious first.
    resource_scores:
        Aggregated |attribution| per telemetry metric kind
        (``cpu_util``, ``mem_util``, ...), pinpointing *which resource*
        is implicated.
    """

    prediction: float
    alert: bool
    explanation: object
    vnf_scores: dict[int, float]
    vnf_ranking: list[int]
    resource_scores: dict[str, float]
    extras: dict = field(default_factory=dict)

    @property
    def primary_suspect(self) -> int | None:
        """Most implicated VNF index (None if no VNF-level signal)."""
        return self.vnf_ranking[0] if self.vnf_ranking else None

    @property
    def primary_resource(self) -> str | None:
        """Most implicated telemetry metric kind."""
        if not self.resource_scores:
            return None
        return max(self.resource_scores, key=self.resource_scores.get)


class NFVExplainabilityPipeline:
    """Train-explain-diagnose pipeline over an :class:`NFVDataset`.

    Parameters
    ----------
    model:
        An *unfitted* estimator from :mod:`repro.ml` (it is cloned and
        fitted by :meth:`fit`).
    explainer_method:
        Any name accepted by
        :func:`~repro.core.explainers.make_explainer` (default
        ``"auto"``).
    threshold:
        Alert threshold on the model score.
    background_size:
        Rows subsampled from the training split as explainer background.
    """

    def __init__(
        self,
        model,
        *,
        explainer_method: str = "auto",
        threshold: float = 0.5,
        class_index: int = 1,
        test_size: float = 0.25,
        background_size: int = 100,
        explainer_kwargs: dict | None = None,
        random_state=None,
    ):
        if not 0.0 < test_size < 1.0:
            raise ValueError(f"test_size must be in (0, 1), got {test_size}")
        if background_size < 1:
            raise ValueError(
                f"background_size must be >= 1, got {background_size}"
            )
        self.model = model
        self.explainer_method = explainer_method
        self.threshold = float(threshold)
        self.class_index = int(class_index)
        self.test_size = float(test_size)
        self.background_size = int(background_size)
        self.explainer_kwargs = dict(explainer_kwargs or {})
        self.random_state = random_state
        self.explainer_ = None
        self.fitted_model_ = None

    # ------------------------------------------------------------------
    def fit(self, dataset) -> "NFVExplainabilityPipeline":
        """Split, train the model, and build the explainer.

        ``dataset`` is an :class:`~repro.datasets.NFVDataset` (or any
        object with ``X`` (FeatureMatrix) and ``y``).
        """
        X = dataset.X.values
        y = np.asarray(dataset.y)
        stratify = y if y.dtype.kind in "iub" or y.dtype.kind in "OSU" else None
        X_train, X_test, y_train, y_test = train_test_split(
            X, y, test_size=self.test_size, random_state=self.random_state,
            stratify=stratify,
        )
        self.feature_names_ = dataset.X.feature_names
        self.chain_ = getattr(
            getattr(dataset, "result", None), "chain", None
        )
        self.fitted_model_ = self.model.clone()
        self.fitted_model_.fit(X_train, y_train)
        self.train_score_ = self.fitted_model_.score(X_train, y_train)
        self.test_score_ = self.fitted_model_.score(X_test, y_test)
        self.X_train_, self.X_test_ = X_train, X_test
        self.y_train_, self.y_test_ = y_train, y_test

        background = X_train
        if len(background) > self.background_size:
            from repro.utils.rng import check_random_state

            rng = check_random_state(self.random_state)
            rows = rng.choice(
                len(background), size=self.background_size, replace=False
            )
            background = background[rows]
        self.background_ = background
        self.explainer_ = make_explainer(
            self.explainer_method,
            self.fitted_model_,
            background,
            self.feature_names_,
            class_index=self.class_index,
            **self.explainer_kwargs,
        )
        self._score_fn = model_output_fn(
            self.fitted_model_, class_index=self.class_index
        )
        return self

    def _check_fitted(self) -> None:
        if self.explainer_ is None:
            raise RuntimeError("pipeline is not fitted; call fit(dataset) first")

    @property
    def score_fn(self):
        """``f(X) -> 1-D scores`` of the fitted model (what the
        explainer attributes); usable with the evaluation suite."""
        self._check_fitted()
        return self._score_fn

    def with_explainer(
        self, method: str, **explainer_kwargs
    ) -> "NFVExplainabilityPipeline":
        """A pipeline sharing this one's fitted model but explaining
        through a different method.

        The fitted model, train/test split, background sample, and
        scores are all shared (nothing is re-trained) — only the
        explainer is rebuilt.  This is what lets the scenario matrix
        runner sweep N explainers per model at the cost of one fit.
        """
        import copy

        self._check_fitted()
        sibling = copy.copy(self)
        sibling.explainer_method = method
        sibling.explainer_kwargs = dict(explainer_kwargs)
        sibling.explainer_ = make_explainer(
            method,
            self.fitted_model_,
            self.background_,
            self.feature_names_,
            class_index=self.class_index,
            **explainer_kwargs,
        )
        return sibling

    # ------------------------------------------------------------------
    def _resolve(
        self, explanation, score: float, aggregation: str
    ) -> NFVDiagnosis:
        """Turn one explanation + model score into an NFV diagnosis."""
        vnf_scores = vnf_attribution_scores(explanation, aggregation=aggregation)
        resource_scores: dict[str, float] = {}
        for name, value in zip(explanation.feature_names, explanation.values):
            if vnf_of_feature(name) is None:
                continue
            for metric in PER_VNF_METRICS:
                if name.endswith(metric):
                    resource_scores[metric] = resource_scores.get(
                        metric, 0.0
                    ) + abs(float(value))
                    break
        return NFVDiagnosis(
            prediction=score,
            alert=score >= self.threshold,
            explanation=explanation,
            vnf_scores=vnf_scores,
            vnf_ranking=rank_vnfs(vnf_scores),
            resource_scores=resource_scores,
        )

    def diagnose(self, x, *, aggregation: str = "abs") -> NFVDiagnosis:
        """Explain one telemetry sample and resolve it to NFV concepts."""
        self._check_fitted()
        x = np.asarray(x, dtype=float).ravel()
        explanation = self.explainer_.explain(x)
        score = float(self._score_fn(x.reshape(1, -1))[0])
        return self._resolve(explanation, score, aggregation)

    def diagnose_batch(
        self, X, *, aggregation: str = "abs", executor=None
    ) -> list[NFVDiagnosis]:
        """Diagnose every row of ``X`` in one vectorized pass.

        The explainer's :meth:`~repro.core.explainers.Explainer.explain_batch`
        shares the coalition design and background evaluation across all
        rows, and the model is scored once for the whole batch — the
        fleet-diagnosis fast path (≥3× over a per-sample loop for
        KernelSHAP at 64 samples; see ``benchmarks/bench_e2_overhead.py``).

        ``executor`` (any backend from :mod:`repro.core.executor`)
        additionally splits the rows into fixed-size chunks and runs
        the chunks in parallel via
        :meth:`~repro.core.explainers.Explainer.explain_batch_chunked`;
        with this pipeline's integer ``random_state`` the result is
        bit-identical across serial, thread, and process backends (see
        ``docs/parallel.md``).
        """
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if X.shape[0] == 0:
            return []
        if executor is None:
            batch = self.explainer_.explain_batch(X)
        else:
            batch = self.explainer_.explain_batch_chunked(X, executor)
        scores = np.asarray(self._score_fn(X), dtype=float)
        return [
            self._resolve(explanation, float(score), aggregation)
            for explanation, score in zip(batch, scores)
        ]

    def report(self, x, *, top_k: int = 5) -> str:
        """Full operator report for one sample (prediction, signals,
        per-VNF blame table)."""
        diagnosis = self.diagnose(x)
        parts = [
            format_local_report(
                diagnosis.explanation,
                chain=self.chain_,
                top_k=top_k,
                threshold=self.threshold,
            ),
            "per-VNF attribution:",
            format_vnf_table(diagnosis.vnf_scores, chain=self.chain_),
        ]
        return "\n".join(parts)

    def global_importance(self, X=None, *, max_rows: int = 200):
        """Dataset-level importances from the pipeline's explainer."""
        self._check_fitted()
        if X is None:
            X = self.X_test_
        X = np.asarray(X, dtype=float)
        if len(X) > max_rows:
            X = X[:max_rows]
        return self.explainer_.global_importance(X)
