"""Scenario × model × explainer matrix experiments.

One fitted model under one workload says little about which explainer
an operator should trust fleet-wide.  This module sweeps the full
matrix: for every registered scenario (see :mod:`repro.nfv.scenarios`)
it generates one dataset, fits every model once, rebuilds every
explainer on the shared fit (:meth:`NFVExplainabilityPipeline.with_explainer`),
diagnoses a batch of violation epochs through the vectorized
:meth:`~repro.core.pipeline.NFVExplainabilityPipeline.diagnose_batch`
path, and scores each cell with the evaluation suite:

* **faithfulness** — normalized deletion/insertion AUCs plus a
  shuffled-attribution control (:mod:`repro.core.evaluation.faithfulness`),
* **comprehensiveness** — mean top-k score drop,
* **agreement** — mean Spearman rank correlation against the sibling
  explainers of the same (scenario, model) cell,
* **stability** — mean cosine similarity of attributions under small
  input perturbations (optional, it costs extra explain calls).

The result is a :class:`MatrixReport` whose :meth:`~MatrixReport.format_table`
is directly comparable across cells — the CLI (``repro scenarios run``)
and ``benchmarks/bench_e3_scenarios.py`` both print it.

The sweep is *sharded*: each scenario × model pair (one dataset, one
fit, all explainers sharing that fit) is an independent task dispatched
to an execution backend from :mod:`repro.core.executor` — serial,
threads, or processes (``repro scenarios run --workers 4 --backend
process``; speedup measured in ``benchmarks/bench_e4_parallel.py``).
Shards are pure functions of their task and the integer seed, so every
backend produces identical cells; ``format_table(timing=False)`` is
byte-identical across backends and worker counts.
"""

from __future__ import annotations

import contextlib
import pickle
import time
from dataclasses import asdict, dataclass, field
from functools import lru_cache, partial

import numpy as np

from repro.core.evaluation import (
    agreement_matrix,
    comprehensiveness,
    faithfulness_report,
    input_stability,
)
from repro.core.executor import get_executor
from repro.core.explainers import STOCHASTIC_EXPLAINERS
from repro.core.pipeline import NFVExplainabilityPipeline
from repro.datasets import make_scenario_dataset

__all__ = [
    "MatrixCell",
    "MatrixReport",
    "default_model_factories",
    "default_explainer_kwargs",
    "run_scenario_matrix",
]


def default_model_factories() -> dict:
    """Named factories for the reference models (shared with the CLI).

    Every factory returns a *fresh, unfitted* estimator, so one matrix
    run cannot leak fitted state into the next.  The factories are
    :func:`functools.partial` objects (not lambdas) so shard tasks
    carrying them can be pickled to process-backend workers.
    """
    from repro.ml import (
        GradientBoostingClassifier,
        LogisticRegression,
        MLPClassifier,
        RandomForestClassifier,
    )

    return {
        "random_forest": partial(
            RandomForestClassifier, n_estimators=60, max_depth=10, random_state=0
        ),
        "gradient_boosting": partial(
            GradientBoostingClassifier,
            n_estimators=80, max_depth=3, learning_rate=0.2, random_state=0,
        ),
        "logistic_regression": partial(LogisticRegression, max_iter=400),
        "mlp": partial(
            MLPClassifier,
            hidden_layer_sizes=(64, 32), max_epochs=60, random_state=0,
        ),
    }


def default_explainer_kwargs(method: str) -> dict:
    """Per-method sampling budgets sized for matrix sweeps.

    Smaller than the single-incident defaults: a matrix evaluates
    hundreds of (row, method) pairs, and the evaluation metrics average
    away per-row estimator noise.
    """
    return {
        "kernel_shap": {"n_samples": 256},
        "sampling_shapley": {"n_permutations": 16},
        "lime": {"n_samples": 400},
    }.get(method, {})


@dataclass
class MatrixCell:
    """Metrics of one (scenario, model, explainer) combination."""

    scenario: str
    model: str
    explainer: str
    train_accuracy: float
    test_accuracy: float
    violation_rate: float
    n_explained: int
    deletion_auc: float
    insertion_auc: float
    random_deletion_auc: float
    comprehensiveness: float
    agreement_spearman: float | None
    stability_cosine: float | None
    explain_seconds: float
    vectorized: bool


@dataclass
class MatrixReport:
    """All cells of one matrix run plus the sweep configuration."""

    cells: list[MatrixCell]
    scenarios: list[str]
    models: list[str]
    explainers: list[str]
    n_epochs: int
    n_explain: int
    seed: int | None = None
    extras: dict = field(default_factory=dict)

    def to_rows(self) -> list[dict]:
        """Cells as plain dicts (for CSV/JSON serialization)."""
        return [asdict(cell) for cell in self.cells]

    def cell(self, scenario: str, model: str, explainer: str) -> MatrixCell:
        """Look one cell up by its coordinates."""
        for c in self.cells:
            if (c.scenario, c.model, c.explainer) == (scenario, model, explainer):
                return c
        raise KeyError(f"no cell ({scenario!r}, {model!r}, {explainer!r})")

    def format_table(self, *, timing: bool = True) -> str:
        """Aligned, comparable text table of every cell.

        ``timing=False`` drops the wall-clock ``sec`` column — the one
        field that varies between otherwise identical runs — leaving
        output that is byte-identical across repeats, execution
        backends, and worker counts under a fixed seed (what the
        determinism tests and the golden regression compare).
        """
        header = (
            f"{'scenario':<22} {'model':<20} {'explainer':<17} "
            f"{'acc':>5} {'viol':>6} {'del.AUC':>8} {'ins.AUC':>8} "
            f"{'rnd.del':>8} {'comp':>7} {'agree':>6} {'stab':>6}"
        )
        if timing:
            header += f" {'sec':>6}"
        lines = [header, "-" * len(header)]
        previous = None
        for c in self.cells:
            scenario = c.scenario if c.scenario != previous else ""
            previous = c.scenario
            agree = f"{c.agreement_spearman:.2f}" if c.agreement_spearman is not None else "-"
            stab = f"{c.stability_cosine:.2f}" if c.stability_cosine is not None else "-"
            line = (
                f"{scenario:<22} {c.model:<20} {c.explainer:<17} "
                f"{c.test_accuracy:>5.2f} {c.violation_rate:>6.1%} "
                f"{c.deletion_auc:>8.3f} {c.insertion_auc:>8.3f} "
                f"{c.random_deletion_auc:>8.3f} {c.comprehensiveness:>7.3f} "
                f"{agree:>6} {stab:>6}"
            )
            if timing:
                line += f" {c.explain_seconds:>6.2f}"
            lines.append(line)
        lines.append(
            "del.AUC: higher = attributed features collapse the prediction "
            "sooner (more faithful, as in E5); rnd.del is the shuffled-"
            "attribution control; comp = mean top-k score drop; agree = "
            "mean Spearman vs sibling explainers; stab = input-perturbation "
            "cosine."
        )
        return "\n".join(lines)


def _neutral_baseline(pipeline) -> np.ndarray:
    """Replacement values for the perturbation curves.

    The mean of the *negative-class* training rows when the task is
    binary classification: deleting a violation's features must move the
    score toward "healthy", otherwise the deletion/insertion curves are
    flat and their normalized AUCs are ill-conditioned (a saturated
    model scores the all-rows mean almost identically to a violation).
    Falls back to the background mean for non-binary tasks.
    """
    y = np.asarray(pipeline.y_train_)
    if y.dtype.kind in "iub":
        negatives = pipeline.X_train_[y == 0]
        if len(negatives) > 0:
            return negatives.mean(axis=0)
    return pipeline.background_.mean(axis=0)


def _select_rows(dataset, n_explain: int) -> np.ndarray:
    """Epochs to diagnose: violations first, newest fallback otherwise."""
    y = np.asarray(dataset.y)
    if y.dtype.kind in "iub":
        picked = np.flatnonzero(y == 1)[:n_explain]
        if len(picked) > 0:
            return picked
    return np.arange(len(y))[-n_explain:]


@dataclass
class _ShardTask:
    """One scenario × model unit of matrix work.

    A shard owns everything its cells share — one dataset generation,
    one model fit, and every explainer riding that fit — and carries
    only picklable configuration, so the same object drives the serial,
    thread, and process backends.  ``random_state`` is the matrix-wide
    integer seed: datasets are byte-identical per scenario under a
    fixed seed, so shards of the same scenario regenerate *the same*
    dataset in whichever worker they land on, and the shard result is a
    pure function of this task alone.
    """

    scenario: object  # registry name (str) or a grammar ScenarioRecipe
    model_name: str
    factory: object
    explainers: tuple
    explainer_kwargs: dict
    n_epochs: int
    n_explain: int
    horizon: int
    top_k: int
    stability_repeats: int
    random_state: int


def _scenario_name(scenario) -> str:
    """Display name of a scenario reference (name or grammar recipe)."""
    return scenario if isinstance(scenario, str) else scenario.name


@lru_cache(maxsize=8)
def _scenario_dataset(scenario, n_epochs: int, horizon: int, seed: int):
    """Per-process memo of seeded scenario datasets.

    Shards of the same scenario share one dataset generation within a
    process (serial and thread backends regain the one-generation-per-
    scenario cost of the unsharded runner; each process-backend worker
    pays at most one generation per scenario).  Safe because scenario
    datasets are byte-identical under a fixed integer seed and shards
    only read them.  ``scenario`` may be a registry name or a (frozen,
    hashable) grammar recipe — both are valid memo keys.
    """
    return make_scenario_dataset(
        scenario, n_epochs, horizon=horizon, random_state=seed
    )


def _run_matrix_shard(task: _ShardTask) -> list[MatrixCell]:
    """Compute every explainer cell of one scenario × model shard.

    Module-level (not a closure) so the process backend can pickle it;
    deterministic given the task, so every backend returns identical
    cells in identical order.
    """
    from repro.core.explainers import Explainer

    if isinstance(task.random_state, (int, np.integer)):
        dataset = _scenario_dataset(
            task.scenario, task.n_epochs, task.horizon, int(task.random_state)
        )
    else:  # non-integer seeds are not reproducible -> never memoize
        dataset = make_scenario_dataset(
            task.scenario, task.n_epochs,
            horizon=task.horizon, random_state=task.random_state,
        )
    rows = _select_rows(dataset, task.n_explain)
    X_sel = dataset.X.values[rows]
    violation_rate = dataset.result.violation_rate

    fitted = None
    cells: list[MatrixCell] = []
    attributions: dict[str, np.ndarray] = {}
    for method in task.explainers:
        kw = task.explainer_kwargs.get(method, {})
        if fitted is None:
            pipeline = NFVExplainabilityPipeline(
                task.factory(),
                explainer_method=method,
                explainer_kwargs=kw,
                random_state=task.random_state,
            ).fit(dataset)
            fitted = pipeline
        else:
            pipeline = fitted.with_explainer(method, **kw)

        # feeds only the `sec` column, dropped by format_table(timing=False)
        # — the byte-identical cross-backend comparison surface
        start = time.perf_counter()  # repro: lint-ignore[D103] opt-out via timing=False
        diagnoses = pipeline.diagnose_batch(X_sel)
        elapsed = time.perf_counter() - start  # repro: lint-ignore[D103] opt-out via timing=False
        A = np.vstack([d.explanation.values for d in diagnoses])
        attributions[method] = A

        baseline = _neutral_baseline(pipeline)
        faith = faithfulness_report(
            pipeline.score_fn, X_sel, A, baseline,
            n_steps=10, random_state=task.random_state,
        )
        comp = float(np.mean([
            comprehensiveness(
                pipeline.score_fn, x, a, baseline,
                k=min(task.top_k, X_sel.shape[1]),
            )
            for x, a in zip(X_sel, A)
        ]))
        stability = None
        if task.stability_repeats >= 2:
            explainer = pipeline.explainer_
            stability = input_stability(
                lambda z: explainer.explain(z).values,
                X_sel[0],
                n_repeats=task.stability_repeats,
                feature_scales=pipeline.X_train_.std(axis=0),
                random_state=task.random_state,
            )["mean_cosine"]

        cells.append(MatrixCell(
            scenario=_scenario_name(task.scenario),
            model=task.model_name,
            explainer=method,
            train_accuracy=float(pipeline.train_score_),
            test_accuracy=float(pipeline.test_score_),
            violation_rate=float(violation_rate),
            n_explained=len(rows),
            deletion_auc=faith["deletion_auc"],
            insertion_auc=faith["insertion_auc"],
            random_deletion_auc=faith["random_deletion_auc"],
            comprehensiveness=comp,
            agreement_spearman=None,
            stability_cosine=stability,
            explain_seconds=elapsed,
            vectorized=(
                type(pipeline.explainer_).explain_batch
                is not Explainer.explain_batch
            ),
        ))

    if len(attributions) >= 2:
        names, M = agreement_matrix(attributions, measure="spearman")
        off_diag = ~np.eye(len(names), dtype=bool)
        for cell in cells:
            i = names.index(cell.explainer)
            cell.agreement_spearman = float(np.mean(M[i][off_diag[i]]))
    return cells


def run_scenario_matrix(
    scenarios,
    models=None,
    explainers=("kernel_shap", "lime"),
    *,
    n_epochs: int = 1000,
    n_explain: int = 8,
    horizon: int = 0,
    top_k: int = 5,
    stability_repeats: int = 0,
    explainer_kwargs: dict | None = None,
    random_state: int = 0,
    backend: str = "auto",
    workers: int | None = None,
    executor=None,
    progress=None,
) -> MatrixReport:
    """Run the full scenario × model × explainer sweep.

    Parameters
    ----------
    scenarios:
        Scenario names from :func:`repro.nfv.scenarios.list_scenarios`,
        grammar :class:`~repro.nfv.grammar.recipe.ScenarioRecipe`
        objects (e.g. adversarial-search candidates that were never
        registered), or a mix of both.  Cells and the report always
        carry the scenario *name*.
    models:
        Mapping of name -> zero-argument model factory; ``None`` uses
        ``random_forest`` and ``logistic_regression`` from
        :func:`default_model_factories`.
    explainers:
        ``make_explainer`` method names.  With more than one model in
        the sweep they should be model-agnostic (``kernel_shap``,
        ``sampling_shapley``, ``lime``, ``exact_shapley``) — model-
        specific methods like ``tree_shap`` raise on the wrong model.
    n_epochs, horizon:
        Dataset length / forecasting horizon per scenario.
    n_explain:
        Violation epochs diagnosed per cell (the batched-engine batch).
    top_k:
        ``k`` for the comprehensiveness metric.
    stability_repeats:
        ``>= 2`` adds the input-stability metric with that many repeats
        (costs ``repeats`` extra explain calls per cell); ``0`` skips it.
    explainer_kwargs:
        Mapping of method -> constructor overrides, merged over
        :func:`default_explainer_kwargs`.
    random_state:
        Integer seed covering dataset generation, splits, and the
        stochastic explainers — the whole matrix is reproducible.
    backend, workers:
        Execution backend for the scenario × model shards (see
        :func:`repro.core.executor.get_executor`): ``"serial"`` (the
        default under ``"auto"`` with no workers), ``"thread"``, or
        ``"process"``.  Every shard is a pure function of its task and
        the integer seed, so the report's cells — and
        ``format_table(timing=False)`` byte-for-byte — are identical
        on every backend and worker count; only wall-clock changes.
    executor:
        A ready :class:`~repro.core.executor.Executor` to dispatch the
        shards on instead of building one from ``backend``/``workers``.
        The caller keeps ownership (this function never closes it) —
        how repeated sweeps (the adversarial search, one per
        generation) share a single pool instead of paying pool
        creation per call and risking a leak on an exception path.
    progress:
        Optional ``callable(str)`` receiving one line per finished cell
        (emitted shard by shard, in deterministic task order).
    """
    scenarios = list(scenarios)
    if not scenarios:
        raise ValueError("scenarios must not be empty")
    if models is None:
        factories = default_model_factories()
        models = {
            name: factories[name]
            for name in ("random_forest", "logistic_regression")
        }
    models = dict(models)
    if not models:
        raise ValueError("models must not be empty")
    explainers = list(explainers)
    if not explainers:
        raise ValueError("explainers must not be empty")
    if n_explain < 1:
        raise ValueError(f"n_explain must be >= 1, got {n_explain}")
    if stability_repeats < 0 or stability_repeats == 1:
        raise ValueError("stability_repeats must be 0 or >= 2")
    overrides = dict(explainer_kwargs or {})

    def kwargs_for(method: str) -> dict:
        kw = {**default_explainer_kwargs(method), **overrides.get(method, {})}
        if method in STOCHASTIC_EXPLAINERS:
            kw.setdefault("random_state", random_state)
        return kw

    def emit(line: str) -> None:
        if progress is not None:
            progress(line)

    resolved_kwargs = {method: kwargs_for(method) for method in explainers}
    tasks = [
        _ShardTask(
            scenario=scenario,
            model_name=model_name,
            factory=factory,
            explainers=tuple(explainers),
            explainer_kwargs=resolved_kwargs,
            n_epochs=n_epochs,
            n_explain=n_explain,
            horizon=horizon,
            top_k=top_k,
            stability_repeats=stability_repeats,
            random_state=random_state,
        )
        for scenario in scenarios
        for model_name, factory in models.items()
    ]

    cells: list[MatrixCell] = []
    owned = (
        get_executor(backend, workers)
        if executor is None
        else contextlib.nullcontext(executor)
    )
    with owned as executor:
        if executor.backend == "process":
            try:
                pickle.dumps(tuple(models.values()))
            except Exception as exc:
                raise ValueError(
                    "model factories must be picklable for the process "
                    "backend (use functools.partial or module-level "
                    "functions, or backend='thread')"
                ) from exc
        for shard_cells in executor.imap(_run_matrix_shard, tasks):
            for cell in shard_cells:
                emit(
                    f"{cell.scenario} × {cell.model} × {cell.explainer}: "
                    f"acc={cell.test_accuracy:.2f} "
                    f"del.AUC={cell.deletion_auc:.3f} "
                    f"({cell.explain_seconds:.2f}s)"
                )
            cells.extend(shard_cells)
        extras = {"backend": executor.backend, "workers": executor.workers}

    return MatrixReport(
        cells=cells,
        scenarios=[_scenario_name(s) for s in scenarios],
        models=list(models),
        explainers=explainers,
        n_epochs=n_epochs,
        n_explain=n_explain,
        seed=random_state,
        extras=extras,
    )
