"""Scenario × model × explainer matrix experiments.

One fitted model under one workload says little about which explainer
an operator should trust fleet-wide.  This module sweeps the full
matrix: for every registered scenario (see :mod:`repro.nfv.scenarios`)
it generates one dataset, fits every model once, rebuilds every
explainer on the shared fit (:meth:`NFVExplainabilityPipeline.with_explainer`),
diagnoses a batch of violation epochs through the vectorized
:meth:`~repro.core.pipeline.NFVExplainabilityPipeline.diagnose_batch`
path, and scores each cell with the evaluation suite:

* **faithfulness** — normalized deletion/insertion AUCs plus a
  shuffled-attribution control (:mod:`repro.core.evaluation.faithfulness`),
* **comprehensiveness** — mean top-k score drop,
* **agreement** — mean Spearman rank correlation against the sibling
  explainers of the same (scenario, model) cell,
* **stability** — mean cosine similarity of attributions under small
  input perturbations (optional, it costs extra explain calls).

The result is a :class:`MatrixReport` whose :meth:`~MatrixReport.format_table`
is directly comparable across cells — the CLI (``repro scenarios run``)
and ``benchmarks/bench_e3_scenarios.py`` both print it.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.core.evaluation import (
    agreement_matrix,
    comprehensiveness,
    faithfulness_report,
    input_stability,
)
from repro.core.pipeline import NFVExplainabilityPipeline
from repro.datasets import make_scenario_dataset

__all__ = [
    "MatrixCell",
    "MatrixReport",
    "default_model_factories",
    "default_explainer_kwargs",
    "run_scenario_matrix",
]

#: Explainers that accept a ``random_state`` constructor argument; the
#: runner seeds them so matrix runs are reproducible end to end.
_STOCHASTIC_EXPLAINERS = frozenset(
    {"kernel_shap", "sampling_shapley", "lime"}
)


def default_model_factories() -> dict:
    """Named factories for the reference models (shared with the CLI).

    Every factory returns a *fresh, unfitted* estimator, so one matrix
    run cannot leak fitted state into the next.
    """
    from repro.ml import (
        GradientBoostingClassifier,
        LogisticRegression,
        MLPClassifier,
        RandomForestClassifier,
    )

    return {
        "random_forest": lambda: RandomForestClassifier(
            n_estimators=60, max_depth=10, random_state=0
        ),
        "gradient_boosting": lambda: GradientBoostingClassifier(
            n_estimators=80, max_depth=3, learning_rate=0.2, random_state=0
        ),
        "logistic_regression": lambda: LogisticRegression(max_iter=400),
        "mlp": lambda: MLPClassifier(
            hidden_layer_sizes=(64, 32), max_epochs=60, random_state=0
        ),
    }


def default_explainer_kwargs(method: str) -> dict:
    """Per-method sampling budgets sized for matrix sweeps.

    Smaller than the single-incident defaults: a matrix evaluates
    hundreds of (row, method) pairs, and the evaluation metrics average
    away per-row estimator noise.
    """
    return {
        "kernel_shap": {"n_samples": 256},
        "sampling_shapley": {"n_permutations": 16},
        "lime": {"n_samples": 400},
    }.get(method, {})


@dataclass
class MatrixCell:
    """Metrics of one (scenario, model, explainer) combination."""

    scenario: str
    model: str
    explainer: str
    train_accuracy: float
    test_accuracy: float
    violation_rate: float
    n_explained: int
    deletion_auc: float
    insertion_auc: float
    random_deletion_auc: float
    comprehensiveness: float
    agreement_spearman: float | None
    stability_cosine: float | None
    explain_seconds: float
    vectorized: bool


@dataclass
class MatrixReport:
    """All cells of one matrix run plus the sweep configuration."""

    cells: list[MatrixCell]
    scenarios: list[str]
    models: list[str]
    explainers: list[str]
    n_epochs: int
    n_explain: int
    seed: int | None = None
    extras: dict = field(default_factory=dict)

    def to_rows(self) -> list[dict]:
        """Cells as plain dicts (for CSV/JSON serialization)."""
        return [asdict(cell) for cell in self.cells]

    def cell(self, scenario: str, model: str, explainer: str) -> MatrixCell:
        """Look one cell up by its coordinates."""
        for c in self.cells:
            if (c.scenario, c.model, c.explainer) == (scenario, model, explainer):
                return c
        raise KeyError(f"no cell ({scenario!r}, {model!r}, {explainer!r})")

    def format_table(self) -> str:
        """Aligned, comparable text table of every cell."""
        header = (
            f"{'scenario':<22} {'model':<20} {'explainer':<17} "
            f"{'acc':>5} {'viol':>6} {'del.AUC':>8} {'ins.AUC':>8} "
            f"{'rnd.del':>8} {'comp':>7} {'agree':>6} {'stab':>6} {'sec':>6}"
        )
        lines = [header, "-" * len(header)]
        previous = None
        for c in self.cells:
            scenario = c.scenario if c.scenario != previous else ""
            previous = c.scenario
            agree = f"{c.agreement_spearman:.2f}" if c.agreement_spearman is not None else "-"
            stab = f"{c.stability_cosine:.2f}" if c.stability_cosine is not None else "-"
            lines.append(
                f"{scenario:<22} {c.model:<20} {c.explainer:<17} "
                f"{c.test_accuracy:>5.2f} {c.violation_rate:>6.1%} "
                f"{c.deletion_auc:>8.3f} {c.insertion_auc:>8.3f} "
                f"{c.random_deletion_auc:>8.3f} {c.comprehensiveness:>7.3f} "
                f"{agree:>6} {stab:>6} {c.explain_seconds:>6.2f}"
            )
        lines.append(
            "del.AUC: higher = attributed features collapse the prediction "
            "sooner (more faithful, as in E5); rnd.del is the shuffled-"
            "attribution control; comp = mean top-k score drop; agree = "
            "mean Spearman vs sibling explainers; stab = input-perturbation "
            "cosine."
        )
        return "\n".join(lines)


def _neutral_baseline(pipeline) -> np.ndarray:
    """Replacement values for the perturbation curves.

    The mean of the *negative-class* training rows when the task is
    binary classification: deleting a violation's features must move the
    score toward "healthy", otherwise the deletion/insertion curves are
    flat and their normalized AUCs are ill-conditioned (a saturated
    model scores the all-rows mean almost identically to a violation).
    Falls back to the background mean for non-binary tasks.
    """
    y = np.asarray(pipeline.y_train_)
    if y.dtype.kind in "iub":
        negatives = pipeline.X_train_[y == 0]
        if len(negatives) > 0:
            return negatives.mean(axis=0)
    return pipeline.background_.mean(axis=0)


def _select_rows(dataset, n_explain: int) -> np.ndarray:
    """Epochs to diagnose: violations first, newest fallback otherwise."""
    y = np.asarray(dataset.y)
    if y.dtype.kind in "iub":
        picked = np.flatnonzero(y == 1)[:n_explain]
        if len(picked) > 0:
            return picked
    return np.arange(len(y))[-n_explain:]


def run_scenario_matrix(
    scenarios,
    models=None,
    explainers=("kernel_shap", "lime"),
    *,
    n_epochs: int = 1000,
    n_explain: int = 8,
    horizon: int = 0,
    top_k: int = 5,
    stability_repeats: int = 0,
    explainer_kwargs: dict | None = None,
    random_state: int = 0,
    progress=None,
) -> MatrixReport:
    """Run the full scenario × model × explainer sweep.

    Parameters
    ----------
    scenarios:
        Scenario names from :func:`repro.nfv.scenarios.list_scenarios`.
    models:
        Mapping of name -> zero-argument model factory; ``None`` uses
        ``random_forest`` and ``logistic_regression`` from
        :func:`default_model_factories`.
    explainers:
        ``make_explainer`` method names.  With more than one model in
        the sweep they should be model-agnostic (``kernel_shap``,
        ``sampling_shapley``, ``lime``, ``exact_shapley``) — model-
        specific methods like ``tree_shap`` raise on the wrong model.
    n_epochs, horizon:
        Dataset length / forecasting horizon per scenario.
    n_explain:
        Violation epochs diagnosed per cell (the batched-engine batch).
    top_k:
        ``k`` for the comprehensiveness metric.
    stability_repeats:
        ``>= 2`` adds the input-stability metric with that many repeats
        (costs ``repeats`` extra explain calls per cell); ``0`` skips it.
    explainer_kwargs:
        Mapping of method -> constructor overrides, merged over
        :func:`default_explainer_kwargs`.
    random_state:
        Integer seed covering dataset generation, splits, and the
        stochastic explainers — the whole matrix is reproducible.
    progress:
        Optional ``callable(str)`` receiving one line per finished cell.
    """
    scenarios = list(scenarios)
    if not scenarios:
        raise ValueError("scenarios must not be empty")
    if models is None:
        factories = default_model_factories()
        models = {
            name: factories[name]
            for name in ("random_forest", "logistic_regression")
        }
    models = dict(models)
    if not models:
        raise ValueError("models must not be empty")
    explainers = list(explainers)
    if not explainers:
        raise ValueError("explainers must not be empty")
    if n_explain < 1:
        raise ValueError(f"n_explain must be >= 1, got {n_explain}")
    if stability_repeats < 0 or stability_repeats == 1:
        raise ValueError("stability_repeats must be 0 or >= 2")
    overrides = dict(explainer_kwargs or {})

    def kwargs_for(method: str) -> dict:
        kw = {**default_explainer_kwargs(method), **overrides.get(method, {})}
        if method in _STOCHASTIC_EXPLAINERS:
            kw.setdefault("random_state", random_state)
        return kw

    def emit(line: str) -> None:
        if progress is not None:
            progress(line)

    cells: list[MatrixCell] = []
    for scenario in scenarios:
        dataset = make_scenario_dataset(
            scenario, n_epochs, horizon=horizon, random_state=random_state
        )
        rows = _select_rows(dataset, n_explain)
        X_sel = dataset.X.values[rows]
        violation_rate = dataset.result.violation_rate
        for model_name, factory in models.items():
            fitted = None
            scenario_model_cells: list[MatrixCell] = []
            attributions: dict[str, np.ndarray] = {}
            for method in explainers:
                kw = kwargs_for(method)
                if fitted is None:
                    pipeline = NFVExplainabilityPipeline(
                        factory(),
                        explainer_method=method,
                        explainer_kwargs=kw,
                        random_state=random_state,
                    ).fit(dataset)
                    fitted = pipeline
                else:
                    pipeline = fitted.with_explainer(method, **kw)

                start = time.perf_counter()
                diagnoses = pipeline.diagnose_batch(X_sel)
                elapsed = time.perf_counter() - start
                A = np.vstack([d.explanation.values for d in diagnoses])
                attributions[method] = A

                baseline = _neutral_baseline(pipeline)
                faith = faithfulness_report(
                    pipeline.score_fn, X_sel, A, baseline,
                    n_steps=10, random_state=random_state,
                )
                comp = float(np.mean([
                    comprehensiveness(
                        pipeline.score_fn, x, a, baseline,
                        k=min(top_k, X_sel.shape[1]),
                    )
                    for x, a in zip(X_sel, A)
                ]))
                stability = None
                if stability_repeats >= 2:
                    explainer = pipeline.explainer_
                    stability = input_stability(
                        lambda z: explainer.explain(z).values,
                        X_sel[0],
                        n_repeats=stability_repeats,
                        feature_scales=pipeline.X_train_.std(axis=0),
                        random_state=random_state,
                    )["mean_cosine"]

                from repro.core.explainers import Explainer

                cell = MatrixCell(
                    scenario=scenario,
                    model=model_name,
                    explainer=method,
                    train_accuracy=float(pipeline.train_score_),
                    test_accuracy=float(pipeline.test_score_),
                    violation_rate=float(violation_rate),
                    n_explained=len(rows),
                    deletion_auc=faith["deletion_auc"],
                    insertion_auc=faith["insertion_auc"],
                    random_deletion_auc=faith["random_deletion_auc"],
                    comprehensiveness=comp,
                    agreement_spearman=None,
                    stability_cosine=stability,
                    explain_seconds=elapsed,
                    vectorized=(
                        type(pipeline.explainer_).explain_batch
                        is not Explainer.explain_batch
                    ),
                )
                scenario_model_cells.append(cell)
                emit(
                    f"{scenario} × {model_name} × {method}: "
                    f"acc={cell.test_accuracy:.2f} "
                    f"del.AUC={cell.deletion_auc:.3f} ({elapsed:.2f}s)"
                )

            if len(attributions) >= 2:
                names, M = agreement_matrix(attributions, measure="spearman")
                off_diag = ~np.eye(len(names), dtype=bool)
                for cell in scenario_model_cells:
                    i = names.index(cell.explainer)
                    cell.agreement_spearman = float(np.mean(M[i][off_diag[i]]))
            cells.extend(scenario_model_cells)

    return MatrixReport(
        cells=cells,
        scenarios=scenarios,
        models=list(models),
        explainers=explainers,
        n_epochs=n_epochs,
        n_explain=n_explain,
        seed=random_state,
    )
