"""Perturbation-based faithfulness: deletion and insertion curves.

If an explanation correctly identifies the features driving a
prediction, then *deleting* those features (replacing them with a
neutral baseline) in attribution order should collapse the prediction
quickly — and *inserting* them into a fully-neutral instance should
restore it quickly.  The areas under these curves are the standard
faithfulness scores (lower deletion AUC / higher insertion AUC =
more faithful); experiment E5 compares explainers with them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "PerturbationCurve",
    "comprehensiveness",
    "deletion_curve",
    "insertion_curve",
    "normalized_auc",
    "faithfulness_report",
    "sufficiency",
]


@dataclass
class PerturbationCurve:
    """A deletion or insertion trajectory.

    Attributes
    ----------
    fractions:
        Fraction of features perturbed at each step (0 .. 1).
    scores:
        Model output after each step.
    kind:
        ``"deletion"`` or ``"insertion"``.
    """

    fractions: np.ndarray
    scores: np.ndarray
    kind: str

    @property
    def auc(self) -> float:
        """Area under the curve over the perturbed-fraction axis."""
        return float(np.trapezoid(self.scores, self.fractions))


def _order_from(attributions: np.ndarray, order: str) -> np.ndarray:
    if order == "abs":
        return np.argsort(-np.abs(attributions))
    if order == "signed":
        return np.argsort(-attributions)
    if order == "random":
        raise ValueError("use a shuffled attribution vector for random order")
    raise ValueError(f"unknown order {order!r}")


def deletion_curve(
    predict_fn,
    x,
    attributions,
    baseline,
    *,
    n_steps: int = 20,
    order: str = "abs",
) -> PerturbationCurve:
    """Replace features with ``baseline`` values in attribution order.

    Parameters
    ----------
    predict_fn:
        ``f(X) -> 1-D scores``.
    x:
        Instance being explained.
    attributions:
        Per-feature attribution values (ranking source).
    baseline:
        Neutral replacement values (commonly the background mean).
    n_steps:
        Number of curve points after the initial unperturbed one.
    order:
        ``"abs"`` ranks by |attribution| (default), ``"signed"`` by raw
        value.
    """
    x = np.asarray(x, dtype=float).ravel()
    attributions = np.asarray(attributions, dtype=float).ravel()
    baseline = np.asarray(baseline, dtype=float).ravel()
    if not len(x) == len(attributions) == len(baseline):
        raise ValueError(
            f"length mismatch: x={len(x)}, attributions={len(attributions)}, "
            f"baseline={len(baseline)}"
        )
    if n_steps < 1:
        raise ValueError(f"n_steps must be >= 1, got {n_steps}")
    ranking = _order_from(attributions, order)
    d = len(x)
    counts = np.unique(
        np.round(np.linspace(0, d, n_steps + 1)).astype(int)
    )
    rows = np.tile(x, (len(counts), 1))
    for row, k in enumerate(counts):
        idx = ranking[:k]
        rows[row, idx] = baseline[idx]
    scores = np.asarray(predict_fn(rows), dtype=float)
    return PerturbationCurve(
        fractions=counts / d, scores=scores, kind="deletion"
    )


def insertion_curve(
    predict_fn,
    x,
    attributions,
    baseline,
    *,
    n_steps: int = 20,
    order: str = "abs",
) -> PerturbationCurve:
    """Start from ``baseline`` and restore features in attribution order."""
    x = np.asarray(x, dtype=float).ravel()
    attributions = np.asarray(attributions, dtype=float).ravel()
    baseline = np.asarray(baseline, dtype=float).ravel()
    if not len(x) == len(attributions) == len(baseline):
        raise ValueError("x, attributions and baseline must have equal length")
    if n_steps < 1:
        raise ValueError(f"n_steps must be >= 1, got {n_steps}")
    ranking = _order_from(attributions, order)
    d = len(x)
    counts = np.unique(
        np.round(np.linspace(0, d, n_steps + 1)).astype(int)
    )
    rows = np.tile(baseline, (len(counts), 1))
    for row, k in enumerate(counts):
        idx = ranking[:k]
        rows[row, idx] = x[idx]
    scores = np.asarray(predict_fn(rows), dtype=float)
    return PerturbationCurve(
        fractions=counts / d, scores=scores, kind="insertion"
    )


def comprehensiveness(
    predict_fn, x, attributions, baseline, k: int
) -> float:
    """Score drop when the top-``k`` attributed features are removed.

    ``f(x) - f(x with top-k replaced by baseline)`` — *large* values
    mean the explanation captured the features the model actually
    needed (DeYoung et al. 2020's "comprehensiveness").
    """
    x = np.asarray(x, dtype=float).ravel()
    attributions = np.asarray(attributions, dtype=float).ravel()
    baseline = np.asarray(baseline, dtype=float).ravel()
    if not 1 <= k <= len(x):
        raise ValueError(f"k must be in [1, {len(x)}], got {k}")
    top = np.argsort(-np.abs(attributions))[:k]
    modified = x.copy()
    modified[top] = baseline[top]
    rows = np.vstack([x, modified])
    scores = np.asarray(predict_fn(rows), dtype=float)
    return float(scores[0] - scores[1])


def sufficiency(predict_fn, x, attributions, baseline, k: int) -> float:
    """Score drop when *only* the top-``k`` features are kept.

    ``f(x) - f(baseline with top-k taken from x)`` — *small* values mean
    the top-k features alone already reproduce the prediction.
    """
    x = np.asarray(x, dtype=float).ravel()
    attributions = np.asarray(attributions, dtype=float).ravel()
    baseline = np.asarray(baseline, dtype=float).ravel()
    if not 1 <= k <= len(x):
        raise ValueError(f"k must be in [1, {len(x)}], got {k}")
    top = np.argsort(-np.abs(attributions))[:k]
    modified = baseline.copy()
    modified[top] = x[top]
    rows = np.vstack([x, modified])
    scores = np.asarray(predict_fn(rows), dtype=float)
    return float(scores[0] - scores[1])


def normalized_auc(curve: PerturbationCurve) -> float:
    """AUC rescaled so 0 = the curve never leaves its starting score and
    1 = it immediately reaches its ending score.

    For a deletion curve of a faithful explanation the score collapses
    early, so the normalized AUC is *small*; for insertion it is large.
    """
    start = curve.scores[0]
    end = curve.scores[-1]
    span = end - start
    if abs(span) < 1e-12:
        return 0.0
    relative = (curve.scores - start) / span
    return float(np.trapezoid(relative, curve.fractions))


def faithfulness_report(
    predict_fn,
    X,
    attributions_per_row,
    baseline,
    *,
    n_steps: int = 20,
    random_state=None,
) -> dict:
    """Mean deletion/insertion AUCs over many instances, plus a
    random-ranking control computed with shuffled attributions.

    Returns a dict with ``deletion_auc``, ``insertion_auc``,
    ``random_deletion_auc`` (all normalized, averaged over rows).
    """
    from repro.utils.rng import check_random_state

    X = np.asarray(X, dtype=float)
    rng = check_random_state(random_state)
    if len(X) != len(attributions_per_row):
        raise ValueError("X and attributions_per_row must align")
    deletion, insertion, random_del = [], [], []
    for x, attr in zip(X, attributions_per_row):
        deletion.append(
            normalized_auc(
                deletion_curve(predict_fn, x, attr, baseline, n_steps=n_steps)
            )
        )
        insertion.append(
            normalized_auc(
                insertion_curve(predict_fn, x, attr, baseline, n_steps=n_steps)
            )
        )
        shuffled = rng.permutation(np.asarray(attr))
        random_del.append(
            normalized_auc(
                deletion_curve(predict_fn, x, shuffled, baseline, n_steps=n_steps)
            )
        )
    return {
        "deletion_auc": float(np.mean(deletion)),
        "insertion_auc": float(np.mean(insertion)),
        "random_deletion_auc": float(np.mean(random_del)),
        "n_instances": len(X),
    }
