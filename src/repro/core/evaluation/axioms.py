"""Shapley axiom checks.

Unlike empirical faithfulness measures, axioms give pass/fail evidence:
efficiency (attributions sum to prediction minus base value), symmetry
(interchangeable features get equal credit), and dummy (irrelevant
features get zero).  These power both the test suite and sanity checks
in examples.
"""

from __future__ import annotations

import numpy as np

__all__ = ["check_efficiency", "check_symmetry", "check_dummy"]


def check_efficiency(explanation, *, atol: float = 1e-6) -> dict:
    """Efficiency: ``base_value + sum(values) == prediction``.

    Returns ``{"passed": bool, "gap": float}``.
    """
    gap = explanation.additivity_gap()
    return {"passed": bool(gap <= atol), "gap": gap}


def check_symmetry(
    explain_fn,
    x,
    i: int,
    j: int,
    *,
    atol: float = 1e-6,
) -> dict:
    """Symmetry at a point where ``x[i] == x[j]`` for a model that is
    symmetric in features ``i`` and ``j``: their attributions must match.

    The caller is responsible for the model actually being symmetric in
    ``(i, j)`` — the check only verifies the explanation's response.
    """
    x = np.asarray(x, dtype=float).ravel()
    if x[i] != x[j]:
        raise ValueError(
            f"symmetry check requires x[{i}] == x[{j}], got {x[i]} vs {x[j]}"
        )
    phi = np.asarray(explain_fn(x), dtype=float)
    gap = float(abs(phi[i] - phi[j]))
    return {"passed": bool(gap <= atol), "gap": gap}


def check_dummy(
    explain_fn,
    x,
    dummy_features,
    *,
    atol: float = 1e-6,
) -> dict:
    """Dummy: features the model provably ignores must get ~0 attribution.

    Returns the worst offender's absolute attribution.
    """
    x = np.asarray(x, dtype=float).ravel()
    phi = np.asarray(explain_fn(x), dtype=float)
    dummy_features = list(dummy_features)
    if not dummy_features:
        raise ValueError("dummy_features must not be empty")
    worst = float(np.max(np.abs(phi[dummy_features])))
    return {"passed": bool(worst <= atol), "max_attribution": worst}
