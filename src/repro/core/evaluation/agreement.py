"""Cross-explainer agreement measures (experiment E7).

Different explainers rarely produce identical attribution values, but a
trustworthy deployment wants them to at least *rank* features
similarly.  We measure Spearman/Kendall rank correlation of
|attributions| and top-k Jaccard overlap.
"""

from __future__ import annotations

import numpy as np
from scipy import stats as _scipy_stats

__all__ = [
    "spearman_correlation",
    "kendall_tau",
    "topk_jaccard",
    "agreement_matrix",
]


def _validate_pair(a, b):
    a = np.asarray(a, dtype=float).ravel()
    b = np.asarray(b, dtype=float).ravel()
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    if len(a) < 2:
        raise ValueError("need at least 2 features to correlate")
    return a, b


def spearman_correlation(a, b, *, by_abs: bool = True) -> float:
    """Spearman rank correlation of two attribution vectors."""
    a, b = _validate_pair(a, b)
    if by_abs:
        a, b = np.abs(a), np.abs(b)
    rho = _scipy_stats.spearmanr(a, b).statistic
    return float(rho) if np.isfinite(rho) else 0.0


def kendall_tau(a, b, *, by_abs: bool = True) -> float:
    """Kendall's tau of two attribution vectors."""
    a, b = _validate_pair(a, b)
    if by_abs:
        a, b = np.abs(a), np.abs(b)
    tau = _scipy_stats.kendalltau(a, b).statistic
    return float(tau) if np.isfinite(tau) else 0.0


def topk_jaccard(a, b, k: int = 5, *, by_abs: bool = True) -> float:
    """Jaccard overlap of the two top-k feature sets."""
    a, b = _validate_pair(a, b)
    if not 1 <= k <= len(a):
        raise ValueError(f"k must be in [1, {len(a)}], got {k}")
    key_a = np.abs(a) if by_abs else a
    key_b = np.abs(b) if by_abs else b
    top_a = set(np.argsort(-key_a)[:k].tolist())
    top_b = set(np.argsort(-key_b)[:k].tolist())
    return len(top_a & top_b) / len(top_a | top_b)


def agreement_matrix(
    attribution_sets: dict[str, np.ndarray],
    *,
    measure: str = "spearman",
    k: int = 5,
) -> tuple[list[str], np.ndarray]:
    """Pairwise agreement between named attribution vectors.

    ``attribution_sets`` maps method name to an attribution vector (or
    to a 2-D array of per-instance attributions, in which case the
    per-instance agreements are averaged).

    Returns ``(names, matrix)``.
    """
    measures = {
        "spearman": spearman_correlation,
        "kendall": kendall_tau,
        "jaccard": lambda a, b: topk_jaccard(a, b, k=k),
    }
    if measure not in measures:
        raise ValueError(
            f"unknown measure {measure!r}; choose from {sorted(measures)}"
        )
    fn = measures[measure]
    names = list(attribution_sets)
    arrays = {}
    n_rows = None
    for name in names:
        arr = np.asarray(attribution_sets[name], dtype=float)
        arr = arr.reshape(1, -1) if arr.ndim == 1 else arr
        if n_rows is None:
            n_rows = len(arr)
        elif len(arr) != n_rows:
            raise ValueError(
                "all attribution sets must cover the same instances"
            )
        arrays[name] = arr
    matrix = np.eye(len(names))
    for i, a_name in enumerate(names):
        for j in range(i + 1, len(names)):
            b_name = names[j]
            per_row = [
                fn(arrays[a_name][r], arrays[b_name][r]) for r in range(n_rows)
            ]
            matrix[i, j] = matrix[j, i] = float(np.mean(per_row))
    return names, matrix
