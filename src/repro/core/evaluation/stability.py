"""Stability of explanations.

Two notions matter in practice:

* **input stability** — do tiny perturbations of the telemetry change
  the explanation wildly? (an unstable explanation cannot be trusted by
  an operator);
* **explanation variance** — for stochastic explainers (KernelSHAP,
  LIME), how much do attributions vary across re-runs on the *same*
  input?
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import check_random_state, spawn_rngs

__all__ = ["input_stability", "explanation_variance"]


def _pairwise_distance_stats(vectors: np.ndarray) -> dict:
    """Mean pairwise L2 and cosine similarity over rows."""
    n = len(vectors)
    l2, cos = [], []
    for i in range(n):
        for j in range(i + 1, n):
            a, b = vectors[i], vectors[j]
            l2.append(float(np.linalg.norm(a - b)))
            na, nb = np.linalg.norm(a), np.linalg.norm(b)
            if na > 0 and nb > 0:
                cos.append(float(a @ b / (na * nb)))
    return {
        "mean_l2": float(np.mean(l2)) if l2 else 0.0,
        "mean_cosine": float(np.mean(cos)) if cos else 1.0,
    }


def input_stability(
    explain_fn,
    x,
    *,
    noise_scale: float = 0.02,
    n_repeats: int = 5,
    feature_scales=None,
    random_state=None,
) -> dict:
    """Explanation sensitivity to small input perturbations.

    Perturbs ``x`` with gaussian noise of ``noise_scale`` (in units of
    ``feature_scales``, default 1), explains every perturbed input, and
    reports pairwise distances between the attribution vectors along
    with a Lipschitz-style ratio
    ``max ||phi(x) - phi(x')|| / ||x - x'||``.

    Parameters
    ----------
    explain_fn:
        ``g(x) -> attribution vector`` (e.g.
        ``lambda x: explainer.explain(x).values``).
    """
    if n_repeats < 2:
        raise ValueError(f"n_repeats must be >= 2, got {n_repeats}")
    if noise_scale < 0:
        raise ValueError(f"noise_scale must be >= 0, got {noise_scale}")
    x = np.asarray(x, dtype=float).ravel()
    scales = (
        np.ones_like(x)
        if feature_scales is None
        else np.asarray(feature_scales, dtype=float)
    )
    rng = check_random_state(random_state)
    base_phi = np.asarray(explain_fn(x), dtype=float)
    phis = [base_phi]
    lipschitz = 0.0
    for _ in range(n_repeats - 1):
        delta = rng.normal(0.0, noise_scale, size=len(x)) * scales
        x_pert = x + delta
        phi = np.asarray(explain_fn(x_pert), dtype=float)
        phis.append(phi)
        denom = float(np.linalg.norm(delta))
        if denom > 0:
            lipschitz = max(
                lipschitz, float(np.linalg.norm(phi - base_phi)) / denom
            )
    stats = _pairwise_distance_stats(np.vstack(phis))
    stats["lipschitz_estimate"] = lipschitz
    return stats


def explanation_variance(
    make_explain_fn,
    x,
    *,
    n_repeats: int = 5,
    random_state=None,
) -> dict:
    """Run-to-run variance of a stochastic explainer on a fixed input.

    Parameters
    ----------
    make_explain_fn:
        ``h(rng) -> (x -> attribution vector)`` — a factory that builds
        the explainer with a given random generator, so each repeat uses
        an independent stream.
    """
    if n_repeats < 2:
        raise ValueError(f"n_repeats must be >= 2, got {n_repeats}")
    x = np.asarray(x, dtype=float).ravel()
    rngs = spawn_rngs(check_random_state(random_state), n_repeats)
    phis = np.vstack(
        [np.asarray(make_explain_fn(rng)(x), dtype=float) for rng in rngs]
    )
    stats = _pairwise_distance_stats(phis)
    stats["per_feature_std"] = phis.std(axis=0)
    stats["mean_std"] = float(phis.std(axis=0).mean())
    return stats
