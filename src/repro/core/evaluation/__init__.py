"""Objective evaluation of explanation quality.

* :mod:`~repro.core.evaluation.faithfulness` — perturbation-based
  deletion/insertion curves and their AUCs (the measure of §5 of the
  XAI literature this paper builds on).
* :mod:`~repro.core.evaluation.stability` — robustness of attributions
  to input noise and to the explainer's own sampling.
* :mod:`~repro.core.evaluation.agreement` — cross-method rank agreement.
* :mod:`~repro.core.evaluation.axioms` — checks of the Shapley axioms
  (efficiency, symmetry, dummy) usable as tests and as ablation
  diagnostics.
"""

from repro.core.evaluation.agreement import (
    agreement_matrix,
    kendall_tau,
    spearman_correlation,
    topk_jaccard,
)
from repro.core.evaluation.axioms import (
    check_dummy,
    check_efficiency,
    check_symmetry,
)
from repro.core.evaluation.faithfulness import (
    comprehensiveness,
    deletion_curve,
    faithfulness_report,
    insertion_curve,
    normalized_auc,
    sufficiency,
)
from repro.core.evaluation.stability import (
    explanation_variance,
    input_stability,
)

__all__ = [
    "agreement_matrix",
    "check_dummy",
    "check_efficiency",
    "check_symmetry",
    "comprehensiveness",
    "deletion_curve",
    "explanation_variance",
    "faithfulness_report",
    "input_stability",
    "insertion_curve",
    "kendall_tau",
    "normalized_auc",
    "spearman_correlation",
    "sufficiency",
    "topk_jaccard",
]
