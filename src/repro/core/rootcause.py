"""Root-cause localization from feature attributions (experiment E6).

The paper's use case: an operator sees a predicted SLA violation and
wants to know *which VNF* is responsible.  We aggregate the per-feature
attributions of the violation prediction into per-VNF scores (the
telemetry feature names encode the VNF each metric belongs to), rank
the VNFs, and score the ranking against the ground-truth culprit set
the fault injector recorded.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nfv.telemetry import vnf_of_feature
from repro.utils.rng import check_random_state

__all__ = [
    "vnf_attribution_scores",
    "rank_vnfs",
    "hit_at_k",
    "RootCauseEvaluator",
    "RootCauseReport",
]


def vnf_attribution_scores(
    explanation, *, aggregation: str = "abs"
) -> dict[int, float]:
    """Aggregate an explanation's values into per-VNF scores.

    Parameters
    ----------
    aggregation:
        ``"abs"`` sums |attribution| per VNF (how much the VNF's metrics
        matter at all); ``"signed"`` sums raw attributions (how much they
        push *toward* the explained outcome).  DESIGN.md flags this
        choice for ablation.
    """
    if aggregation not in ("abs", "signed"):
        raise ValueError(
            f"aggregation must be 'abs' or 'signed', got {aggregation!r}"
        )
    scores: dict[int, float] = {}
    for name, value in zip(explanation.feature_names, explanation.values):
        vnf = vnf_of_feature(name)
        if vnf is None:
            continue
        contribution = abs(float(value)) if aggregation == "abs" else float(value)
        scores[vnf] = scores.get(vnf, 0.0) + contribution
    return scores


def rank_vnfs(scores: dict[int, float]) -> list[int]:
    """VNF indices sorted by decreasing score (ties broken by index)."""
    return [v for v, _ in sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))]


def hit_at_k(ranking: list[int], culprits, k: int) -> bool:
    """Whether any ground-truth culprit appears in the top ``k``."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    culprit_set = set(culprits)
    if not culprit_set:
        raise ValueError("hit_at_k needs a non-empty culprit set")
    return bool(culprit_set & set(ranking[:k]))


@dataclass
class RootCauseReport:
    """Aggregate localization accuracy of one ranking method.

    Attributes
    ----------
    method:
        Ranking source (explainer name or baseline).
    hits:
        ``hits[k]`` = fraction of evaluated incidents where a culprit
        was in the top k.
    n_incidents:
        Number of fault epochs evaluated.
    """

    method: str
    hits: dict[int, float]
    n_incidents: int
    extras: dict = field(default_factory=dict)

    def __str__(self) -> str:
        parts = ", ".join(f"hit@{k}={v:.2f}" for k, v in sorted(self.hits.items()))
        return f"{self.method}: {parts} ({self.n_incidents} incidents)"


class RootCauseEvaluator:
    """Scores attribution-based root-cause localization.

    Parameters
    ----------
    n_vnfs:
        Chain length (for the random baseline and k validation).
    ks:
        The k values for hit@k.
    """

    def __init__(self, n_vnfs: int, ks=(1, 2, 3)):
        if n_vnfs < 1:
            raise ValueError(f"n_vnfs must be >= 1, got {n_vnfs}")
        self.n_vnfs = n_vnfs
        self.ks = tuple(int(k) for k in ks)
        if any(not 1 <= k <= n_vnfs for k in self.ks):
            raise ValueError(f"all ks must be in [1, {n_vnfs}], got {ks}")

    # ------------------------------------------------------------------
    def evaluate_rankings(
        self, rankings: list[list[int]], culprit_sets: list, method: str
    ) -> RootCauseReport:
        """Score precomputed rankings against culprit sets."""
        if len(rankings) != len(culprit_sets):
            raise ValueError("rankings and culprit_sets must align")
        usable = [
            (r, c) for r, c in zip(rankings, culprit_sets) if len(c) > 0
        ]
        if not usable:
            raise ValueError("no incidents with known culprit VNFs")
        hits = {
            k: float(np.mean([hit_at_k(r, c, k) for r, c in usable]))
            for k in self.ks
        }
        return RootCauseReport(method=method, hits=hits, n_incidents=len(usable))

    def evaluate_explainer(
        self,
        explainer,
        X_incidents: np.ndarray,
        culprit_sets: list,
        *,
        aggregation: str = "abs",
        method: str | None = None,
    ) -> RootCauseReport:
        """Explain each incident row and score the derived VNF rankings."""
        rankings = []
        for x in np.asarray(X_incidents, dtype=float):
            explanation = explainer.explain(x)
            scores = vnf_attribution_scores(explanation, aggregation=aggregation)
            rankings.append(rank_vnfs(scores))
        name = method or getattr(explainer, "method_name", "explainer")
        return self.evaluate_rankings(rankings, culprit_sets, method=name)

    # ------------------------------------------------------------------
    # baselines
    # ------------------------------------------------------------------
    def random_baseline(
        self, culprit_sets: list, *, n_repeats: int = 20, random_state=None
    ) -> RootCauseReport:
        """Expected hit@k of a uniformly random VNF ranking."""
        rng = check_random_state(random_state)
        reports = []
        usable = [c for c in culprit_sets if len(c) > 0]
        if not usable:
            raise ValueError("no incidents with known culprit VNFs")
        for _ in range(n_repeats):
            rankings = [
                rng.permutation(self.n_vnfs).tolist() for _ in usable
            ]
            reports.append(
                self.evaluate_rankings(rankings, usable, method="random")
            )
        hits = {
            k: float(np.mean([r.hits[k] for r in reports])) for k in self.ks
        }
        return RootCauseReport(
            method="random", hits=hits, n_incidents=len(usable)
        )

    def utilization_baseline(
        self,
        X_incidents: np.ndarray,
        culprit_sets: list,
        feature_names: list[str],
        *,
        metric_suffix: str = "cpu_util",
    ) -> RootCauseReport:
        """Heuristic baseline: rank VNFs by their raw metric value (the
        "blame the busiest VNF" rule operators use today)."""
        columns: dict[int, int] = {}
        for idx, name in enumerate(feature_names):
            vnf = vnf_of_feature(name)
            if vnf is not None and name.endswith(metric_suffix):
                columns[vnf] = idx
        if len(columns) < self.n_vnfs:
            raise ValueError(
                f"found {metric_suffix} columns for only {len(columns)} of "
                f"{self.n_vnfs} VNFs"
            )
        rankings = []
        for x in np.asarray(X_incidents, dtype=float):
            scores = {vnf: float(x[col]) for vnf, col in columns.items()}
            rankings.append(rank_vnfs(scores))
        return self.evaluate_rankings(
            rankings, culprit_sets, method=f"raw_{metric_suffix}"
        )
