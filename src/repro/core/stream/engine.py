"""Online SLA-violation diagnosis over streaming telemetry.

The paper (and everything in this repo up to now) explains violations
from a *materialized* dataset — simulate the full horizon, fit once,
diagnose after the fact.  A production control loop cannot wait for the
horizon to end: telemetry arrives epoch by epoch, the traffic mix
drifts, models go stale, and the explanations have to ride the same
streaming path as the predictions (EXPLORA, CoNEXT '23).

:class:`StreamingDiagnosisEngine` is that path.  It consumes epoch
batches (from :meth:`repro.nfv.simulator.Simulator.stream`,
:meth:`repro.nfv.scenarios.ScenarioSpec.stream`, or
:func:`repro.datasets.stream_scenario_telemetry` — any iterable of
objects with ``features``/``sla_violation``), slices them into fixed
windows of ``window_epochs`` epochs, and per window:

1. appends the epochs to a bounded sliding history (``max_history``),
2. refits the model + explainer every ``refit_every`` windows (and at
   the first window where the history supports a stratified fit),
3. diagnoses the window's violation epochs through the *batched*
   explanation engine — one vectorized ``diagnose_batch`` per window,
   chunk-dispatched to an execution backend, background predictions
   memoized by :mod:`repro.core.cache` across windows between refits,
4. feeds the window's violation rate and the shift of its mean
   attribution profile into Page–Hinkley drift detectors
   (:mod:`repro.core.stream.drift`).

Determinism contract (the same one the matrix runner makes, see
``docs/parallel.md``): under an integer seed,
``StreamReport.format_table(timing=False)`` is byte-identical across
serial/thread/process backends and worker counts.  Window boundaries
depend only on ``window_epochs`` and the stream length — never on how
the stream was batched; window ``w`` draws the integer child seed
``spawn_seeds(seed, w + 1)[w]`` (exposed as :func:`window_seeds`), so
every refit, split, and coalition design is a pure function of
``(configuration, history, window index)``; explanation chunks keep the
fixed 16-row boundaries of ``explain_batch_chunked``.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.core.executor import get_executor
from repro.core.explainers import STOCHASTIC_EXPLAINERS
from repro.core.pipeline import NFVExplainabilityPipeline
from repro.core.stream.drift import PageHinkley
from repro.utils.rng import spawn_seeds
from repro.utils.tabular import FeatureMatrix

__all__ = [
    "MALFORMED_CHECKS",
    "MalformedBatchError",
    "StreamEvent",
    "StreamWindow",
    "StreamReport",
    "StreamingDiagnosisEngine",
    "window_seeds",
]

#: Minimum rows per class before a stratified refit is attempted.
_MIN_CLASS_ROWS = 2

#: Every named data-quality check :class:`MalformedBatchError` can carry.
MALFORMED_CHECKS = (
    "misaligned-shapes",
    "non-finite-features",
    "labels-not-binary",
    "schema-changed",
)


class MalformedBatchError(ValueError):
    """A telemetry batch failed one of the engine's named data checks.

    Subclasses :class:`ValueError` (what the checks historically
    raised), adding the machine-readable ``check`` name from
    :data:`MALFORMED_CHECKS` — the key the malformed-batch policy,
    skip events, and the serve layer's quarantine reports are built
    on.  Only *data-quality* failures are classified this way;
    handing the engine something that is not an epoch batch at all
    stays a plain :class:`TypeError` (a programming error no policy
    should swallow).
    """

    def __init__(self, check: str, message: str):
        super().__init__(message)
        self.check = check


@dataclass(frozen=True)
class StreamEvent:
    """One named non-window occurrence of a streaming run.

    ``kind`` is ``"skipped-batch"`` today; ``check`` names the failed
    data check (:data:`MALFORMED_CHECKS`), ``epoch`` is the engine's
    stream offset (:attr:`StreamingDiagnosisEngine.epochs_seen`) when
    the event was recorded, and ``detail`` carries the check's full
    message.  All fields are pure functions of the configuration and
    the consumed stream, so event logs are byte-identical across
    backends too.
    """

    kind: str
    check: str
    epoch: int
    detail: str = ""


def window_seeds(random_state, n: int) -> list[int]:
    """The engine's per-window child seeds, as a list.

    Window ``w`` of a streaming run seeded with ``random_state`` uses
    ``window_seeds(random_state, n)[w]`` for every stochastic choice it
    makes (model fit, train/test split, explainer sampling).  This is
    exactly :func:`repro.utils.rng.spawn_seeds` — re-exported under a
    contract-bearing name so tests and reference implementations (the
    naive loop in ``benchmarks/bench_e5_stream.py``) can reproduce the
    engine without touching its internals.  Child seeds depend only on
    the seed and the window *index*: prefixes agree for any ``n``.
    """
    return spawn_seeds(random_state, n)


@dataclass
class StreamWindow:
    """Everything the engine concluded about one telemetry window.

    Attributes
    ----------
    index:
        Window number within the engine's lifetime (0-based).
    start_epoch, end_epoch:
        Epoch span ``[start, end)`` of the window in the stream.
    violation_rate:
        Fraction of the window's epochs that violated the SLA.
    refit:
        Whether the model + explainer were refit at this window.
    seed:
        The window's integer child seed (see :func:`window_seeds`).
    test_accuracy:
        Held-out accuracy of the model in effect (``None`` in warmup).
    n_explained, n_alerts:
        Violation epochs diagnosed, and how many crossed the alert
        threshold.
    mean_score:
        Mean model score over the explained epochs (``None`` if none).
    top_feature:
        Feature with the largest mean |attribution| this window.
    attribution_shift:
        Cosine distance between this window's mean attribution profile
        and the previous explained window's (``None`` for the first).
    violation_drift, attribution_drift:
        Page–Hinkley alarms raised at this window.
    seconds:
        Wall-clock spent processing the window (never compared).
    """

    index: int
    start_epoch: int
    end_epoch: int
    violation_rate: float
    refit: bool
    seed: int
    test_accuracy: float | None
    n_explained: int
    n_alerts: int
    mean_score: float | None
    top_feature: str | None
    attribution_shift: float | None
    violation_drift: bool
    attribution_drift: bool
    seconds: float

    @property
    def n_epochs(self) -> int:
        return self.end_epoch - self.start_epoch


@dataclass
class StreamReport:
    """All windows of one streaming run plus the engine configuration.

    ``events`` lists the named :class:`StreamEvent` occurrences of the
    run (batches skipped under the ``on_malformed="skip"`` policy).
    They are *not* part of :meth:`format_table` — the diagnosis bytes
    stay identical to a fault-free run, which is the recoverable half
    of the chaos invariant — and render separately through
    :meth:`format_events`.
    """

    windows: list[StreamWindow]
    window_epochs: int
    refit_every: int
    explainer: str
    scenario: str | None = None
    seed: int | None = None
    extras: dict = field(default_factory=dict)
    events: list[StreamEvent] = field(default_factory=list)

    @property
    def n_epochs(self) -> int:
        """Total epochs consumed across all windows."""
        return sum(w.n_epochs for w in self.windows)

    @property
    def n_refits(self) -> int:
        return sum(w.refit for w in self.windows)

    @property
    def drift_windows(self) -> list[int]:
        """Indices of windows where either detector fired."""
        return [
            w.index
            for w in self.windows
            if w.violation_drift or w.attribution_drift
        ]

    def to_rows(self) -> list[dict]:
        """Windows as plain dicts (for CSV/JSON serialization)."""
        return [asdict(w) for w in self.windows]

    def summary(self) -> str:
        """One-line run summary for logs and CLI footers."""
        total = self.n_epochs
        # weight by window length: the trailing window may be shorter,
        # and "mean violation rate" must mean the epoch-level rate
        mean_rate = (
            sum(w.violation_rate * w.n_epochs for w in self.windows) / total
            if total
            else 0.0
        )
        return (
            f"{self.n_epochs} epochs in {len(self.windows)} windows of "
            f"{self.window_epochs} | mean violation rate {mean_rate:.1%} | "
            f"{self.n_refits} refits | "
            f"{sum(w.n_explained for w in self.windows)} epochs explained | "
            f"drift alarms at windows {self.drift_windows or 'none'}"
        )

    def format_table(self, *, timing: bool = True) -> str:
        """Aligned per-window text table.

        ``timing=False`` drops the wall-clock ``sec`` column — the only
        field that varies between otherwise identical runs — leaving
        output that is byte-identical across repeats, execution
        backends, and worker counts under a fixed integer seed (what
        the determinism tests and the golden regression compare).
        """
        header = (
            f"{'win':>4} {'epochs':>12} {'viol':>6} {'refit':>5} "
            f"{'acc':>5} {'expl':>4} {'alert':>5} {'score':>6} "
            f"{'shift':>6} {'drift':>5}  top feature"
        )
        if timing:
            header = header.replace("  top feature", f" {'sec':>6}  top feature")
        lines = [header, "-" * max(len(header), 78)]
        for w in self.windows:
            acc = f"{w.test_accuracy:.2f}" if w.test_accuracy is not None else "-"
            score = f"{w.mean_score:.3f}" if w.mean_score is not None else "-"
            shift = (
                f"{w.attribution_shift:.3f}"
                if w.attribution_shift is not None
                else "-"
            )
            drift = {
                (False, False): "-",
                (True, False): "V",
                (False, True): "A",
                (True, True): "V+A",
            }[(w.violation_drift, w.attribution_drift)]
            line = (
                f"{w.index:>4} {f'{w.start_epoch}-{w.end_epoch}':>12} "
                f"{w.violation_rate:>6.1%} {'yes' if w.refit else '-':>5} "
                f"{acc:>5} {w.n_explained:>4} {w.n_alerts:>5} {score:>6} "
                f"{shift:>6} {drift:>5}"
            )
            if timing:
                line += f" {w.seconds:>6.2f}"
            line += f"  {w.top_feature or '-'}"
            lines.append(line)
        lines.append(
            "viol = ground-truth SLA violation rate; acc = held-out "
            "accuracy of the model in effect; expl/alert = violation "
            "epochs diagnosed / above threshold; shift = cosine distance "
            "of the mean |attribution| profile vs the previous explained "
            "window; drift: V = violation-rate alarm, A = attribution "
            "alarm (Page-Hinkley)."
        )
        return "\n".join(lines)

    def format_events(self) -> str:
        """Deterministic text log of the run's named events.

        Kept out of :meth:`format_table` on purpose: the table answers
        "what did the diagnosis conclude" (and must match a fault-free
        run byte for byte), this answers "what did the run survive".
        """
        if not self.events:
            return "no stream events"
        lines = [f"stream events ({len(self.events)}):"]
        for event in self.events:
            lines.append(
                f"  {event.kind}[{event.check}] @epoch {event.epoch}: "
                f"{event.detail}"
            )
        return "\n".join(lines)


class _HistoryDataset:
    """Duck-typed ``NFVDataset`` over the engine's sliding history."""

    def __init__(self, X: np.ndarray, y: np.ndarray, feature_names):
        self.X = FeatureMatrix(X, feature_names)
        self.y = y


class StreamingDiagnosisEngine:
    """Sliding-window train/explain/drift loop over epoch batches.

    Parameters
    ----------
    model_factory:
        Zero-argument callable returning a fresh unfitted estimator
        (default: the reference ``logistic_regression`` factory from
        :func:`repro.core.matrix.default_model_factories`).  Must be
        deterministic for the integer-seed reproducibility contract.
    window_epochs:
        Epochs per diagnosis window (the last window of a stream may be
        shorter).  Boundaries depend only on this and the stream
        length, never on how the incoming batches are sliced.
    refit_every:
        Refit the model + explainer every this many windows.  The first
        fit happens at the first window whose history supports a
        stratified split (both classes present); until then windows are
        *warmup*: counted and drift-monitored, but not explained.
    explainer_method, explainer_kwargs:
        Explainer built on each refit
        (:func:`repro.core.explainers.make_explainer` names); kwargs
        are merged over
        :func:`repro.core.matrix.default_explainer_kwargs`, and
        stochastic explainers are seeded with the refit window's child
        seed.
    explain_per_window:
        Cap on violation epochs diagnosed per window (0 disables
        explanation entirely — monitoring-only mode).
    max_history:
        Sliding training-history bound, in epochs.
    min_train_epochs:
        History needed before the first fit (default:
        ``max(window_epochs, 2)``).
    threshold:
        Alert threshold on the model score.
    violation_drift, attribution_drift:
        Keyword overrides for the two :class:`PageHinkley` detectors.
    backend, workers:
        Execution backend for chunked explanation dispatch (see
        :func:`repro.core.executor.get_executor`); results are
        byte-identical across backends under an integer seed.
    on_malformed:
        What :meth:`ingest` does with a batch that fails a named data
        check: ``"raise"`` (default) propagates the
        :class:`MalformedBatchError`; ``"skip"`` drops the batch
        untouched and records a named :class:`StreamEvent` — the
        windowed bytes continue as if the batch never arrived.
    random_state:
        Integer seed covering every stochastic choice of the run.
        Non-integer seeds (``None``, a live ``Generator``, a
        ``SeedSequence``) are frozen into one drawn integer at
        construction, so window seeds stay stable across restarts —
        the resulting report records that integer as its ``seed``.

    The engine is *resumable*: :meth:`run` may be called on successive
    streams and windows keep numbering from where they left off;
    :meth:`reset` restarts everything (history, detectors, window
    index, seed sequence) so a reset engine reproduces its first run
    exactly.
    """

    def __init__(
        self,
        model_factory=None,
        *,
        window_epochs: int = 64,
        refit_every: int = 4,
        explainer_method: str = "kernel_shap",
        explainer_kwargs: dict | None = None,
        explain_per_window: int = 8,
        max_history: int = 4096,
        min_train_epochs: int | None = None,
        threshold: float = 0.5,
        violation_drift: dict | None = None,
        attribution_drift: dict | None = None,
        backend: str = "serial",
        workers: int | None = None,
        on_malformed: str = "raise",
        random_state=None,
    ):
        if on_malformed not in ("raise", "skip"):
            raise ValueError(
                f"on_malformed must be 'raise' or 'skip', got {on_malformed!r}"
            )
        if window_epochs < 1:
            raise ValueError(f"window_epochs must be >= 1, got {window_epochs}")
        if refit_every < 1:
            raise ValueError(f"refit_every must be >= 1, got {refit_every}")
        if explain_per_window < 0:
            raise ValueError(
                f"explain_per_window must be >= 0, got {explain_per_window}"
            )
        if min_train_epochs is None:
            min_train_epochs = max(window_epochs, 2)
        if min_train_epochs < 2:
            raise ValueError(
                f"min_train_epochs must be >= 2, got {min_train_epochs}"
            )
        if max_history < min_train_epochs:
            raise ValueError(
                f"max_history ({max_history}) must be >= min_train_epochs "
                f"({min_train_epochs})"
            )
        if model_factory is None:
            from repro.core.matrix import default_model_factories

            model_factory = default_model_factories()["logistic_regression"]
        self.model_factory = model_factory
        self.window_epochs = int(window_epochs)
        self.refit_every = int(refit_every)
        self.explainer_method = explainer_method
        self.explainer_kwargs = dict(explainer_kwargs or {})
        self.explain_per_window = int(explain_per_window)
        self.max_history = int(max_history)
        self.min_train_epochs = int(min_train_epochs)
        self.threshold = float(threshold)
        self._violation_drift_kwargs = {
            "delta": 0.02, "threshold": 0.25, "min_samples": 5,
            "direction": "both", **(violation_drift or {}),
        }
        self._attribution_drift_kwargs = {
            "delta": 0.02, "threshold": 0.3, "min_samples": 4,
            "direction": "up", **(attribution_drift or {}),
        }
        self.backend = backend
        self.workers = workers
        self.on_malformed = on_malformed
        if isinstance(random_state, (int, np.integer)):
            self.random_state = int(random_state)
        else:
            # freeze None / live Generators / SeedSequences into one
            # drawn integer seed: window_seeds prefixes must stay
            # stable across seed-cache regrowth and reset() (a live
            # generator would advance on every spawn_seeds call)
            self.random_state = spawn_seeds(random_state, 1)[0]
        self.reset()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Forget everything: history, model, detectors, window index.

        A reset engine is indistinguishable from a freshly constructed
        one — replaying the same stream reproduces the same report.
        """
        self._pending_X: list[np.ndarray] = []
        self._pending_y: list[np.ndarray] = []
        self._pending_rows = 0
        self._history_X: np.ndarray | None = None
        self._history_y: np.ndarray | None = None
        self._feature_names: list[str] | None = None
        self._epoch = 0
        self._window_index = 0
        self._windows_since_refit = 0
        self._pipeline: NFVExplainabilityPipeline | None = None
        self._test_accuracy: float | None = None
        self._previous_profile: np.ndarray | None = None
        self._seed_cache: list[int] = []
        self.violation_detector = PageHinkley(**self._violation_drift_kwargs)
        self.attribution_detector = PageHinkley(
            **self._attribution_drift_kwargs
        )
        self.windows: list[StreamWindow] = []
        self.events: list[StreamEvent] = []

    # -- snapshot / restore --------------------------------------------
    def config_dict(self) -> dict:
        """The engine's report-determining configuration as a plain dict.

        Everything that, together with the consumed stream, fixes the
        report bytes: window/refit geometry, explainer configuration,
        history bounds, thresholds, drift-detector parameters, and the
        frozen integer seed.  Deliberately excluded: ``model_factory``
        (callables are not comparable — restoring code must supply an
        equivalent factory) and ``backend``/``workers`` (timing-only;
        reports are byte-identical across backends).  Used by
        :meth:`load_state_dict` to refuse loading state into a
        differently configured engine.
        """
        return {
            "window_epochs": self.window_epochs,
            "refit_every": self.refit_every,
            "explainer_method": self.explainer_method,
            "explainer_kwargs": dict(self.explainer_kwargs),
            "explain_per_window": self.explain_per_window,
            "max_history": self.max_history,
            "min_train_epochs": self.min_train_epochs,
            "threshold": self.threshold,
            "violation_drift": dict(self._violation_drift_kwargs),
            "attribution_drift": dict(self._attribution_drift_kwargs),
            "on_malformed": self.on_malformed,
            "random_state": self.random_state,
        }

    def state_dict(self) -> dict:
        """Snapshot of everything needed to resume this engine exactly.

        Returns ``{"config": config_dict(), "state": {...}}`` where the
        state holds the pending epoch buffer, the sliding history, the
        fitted pipeline, both drift detectors, the window index, the
        attribution-drift reference profile, and the closed windows —
        all picklable (the pipeline's packed ensembles are dropped on
        pickle and rebuilt on unpickle, byte-identically).  The dict
        shares references with the live engine: pickle it (or deep-copy
        it) before the engine processes more batches.  The seed cache
        is *not* included — it regrows from the frozen integer seed
        with identical prefixes.

        An engine restored via :meth:`load_state_dict` continues the
        stream byte-identically to one that was never interrupted: the
        determinism contract makes every window a pure function of
        ``(configuration, history, window index)``, and all of those
        are in the snapshot.
        """
        return {
            "config": self.config_dict(),
            "state": {
                "pending_X": list(self._pending_X),
                "pending_y": list(self._pending_y),
                "history_X": self._history_X,
                "history_y": self._history_y,
                "feature_names": (
                    list(self._feature_names)
                    if self._feature_names is not None
                    else None
                ),
                "epoch": self._epoch,
                "window_index": self._window_index,
                "windows_since_refit": self._windows_since_refit,
                "pipeline": self._pipeline,
                "test_accuracy": self._test_accuracy,
                "previous_profile": self._previous_profile,
                "violation_detector": self.violation_detector,
                "attribution_detector": self.attribution_detector,
                "windows": list(self.windows),
                "events": list(self.events),
            },
        }

    def load_state_dict(self, snapshot: dict) -> None:
        """Install a :meth:`state_dict` snapshot, resuming its stream.

        The snapshot's configuration must match this engine's
        (:meth:`config_dict` equality) — loading drift state or a
        fitted pipeline into a differently configured engine would
        silently break the determinism contract, so a mismatch raises
        ``ValueError`` naming the differing keys instead.
        """
        config, mine = snapshot["config"], self.config_dict()
        if config != mine:
            differing = [
                key
                for key in sorted(set(config) | set(mine))
                if config.get(key) != mine.get(key)
            ]
            raise ValueError(
                "snapshot configuration does not match this engine; "
                f"differing keys: {differing}"
            )
        state = snapshot["state"]
        self.reset()
        self._pending_X = list(state["pending_X"])
        self._pending_y = list(state["pending_y"])
        self._pending_rows = int(sum(len(y) for y in self._pending_y))
        self._history_X = state["history_X"]
        self._history_y = state["history_y"]
        self._feature_names = (
            list(state["feature_names"])
            if state["feature_names"] is not None
            else None
        )
        self._epoch = int(state["epoch"])
        self._window_index = int(state["window_index"])
        self._windows_since_refit = int(state["windows_since_refit"])
        self._pipeline = state["pipeline"]
        self._test_accuracy = state["test_accuracy"]
        self._previous_profile = state["previous_profile"]
        self.violation_detector = state["violation_detector"]
        self.attribution_detector = state["attribution_detector"]
        self.windows = list(state["windows"])
        # .get: snapshots predating the malformed-batch policy have no
        # event log; they resume with an empty one
        self.events = list(state.get("events", []))

    # ------------------------------------------------------------------
    def _window_seed(self, index: int) -> int:
        """Child seed of window ``index`` (see :func:`window_seeds`)."""
        if index >= len(self._seed_cache):
            # regrow in blocks; spawn_seeds prefixes agree for any n,
            # so the cache only ever extends, never changes
            n = max(64, 2 * len(self._seed_cache), index + 1)
            self._seed_cache = window_seeds(self.random_state, n)
        return self._seed_cache[index]

    def _ingest(self, batch) -> None:
        """Append one epoch batch's rows to the pending buffer."""
        features = getattr(batch, "features", None)
        values = getattr(features, "values", None)
        labels = getattr(batch, "sla_violation", None)
        if values is None or labels is None:
            raise TypeError(
                "stream batches must expose .features (a FeatureMatrix) "
                f"and .sla_violation, got {type(batch).__name__}"
            )
        values = np.asarray(values, dtype=float)
        labels = np.asarray(labels)
        start = getattr(batch, "start_epoch", None)
        where = (
            f"batch starting at epoch {start}"
            if start is not None
            else f"batch at stream offset {self._epoch + self._pending_rows}"
        )
        if values.ndim != 2 or len(values) != len(labels):
            raise MalformedBatchError(
                "misaligned-shapes",
                f"batch features {values.shape} do not align with "
                f"{len(labels)} labels",
            )
        if not np.isfinite(values).all():
            raise MalformedBatchError(
                "non-finite-features",
                f"batch features contain NaN/inf values; {where}",
            )
        # validate *before* the int64 cast below: float labels (0.3)
        # would be silently truncated, and negatives / multi-class
        # values only crash much later, deep inside np.bincount in
        # _history_fittable, with no hint of which batch was bad
        binary = np.isin(labels, (0, 1))
        if not np.all(binary):
            bad = np.unique(np.asarray(labels)[~binary])[:8]
            raise MalformedBatchError(
                "labels-not-binary",
                "sla_violation labels must be binary 0/1; "
                f"{where} contains {bad.tolist()}",
            )
        if self._feature_names is None:
            self._feature_names = list(features.feature_names)
        elif list(features.feature_names) != self._feature_names:
            raise MalformedBatchError(
                "schema-changed",
                "batch feature names changed mid-stream; streams must "
                "keep one telemetry schema",
            )
        if len(values) == 0:
            return
        self._pending_X.append(values)
        self._pending_y.append(labels.astype(np.int64))
        self._pending_rows += len(values)

    def _pop_window(self, n_rows: int) -> tuple[np.ndarray, np.ndarray]:
        """Remove exactly ``n_rows`` leading rows from the pending buffer.

        Consumes whole chunks and leaves the remainder of a split chunk
        as views, so popping W rows costs O(W) — independent of how
        much telemetry is still pending (a single huge ingested batch
        must not make every window pay for the whole backlog).
        """
        taken_X, taken_y = [], []
        need = n_rows
        while need > 0:
            head_X, head_y = self._pending_X[0], self._pending_y[0]
            if len(head_X) <= need:
                taken_X.append(head_X)
                taken_y.append(head_y)
                self._pending_X.pop(0)
                self._pending_y.pop(0)
                need -= len(head_X)
            else:
                taken_X.append(head_X[:need])
                taken_y.append(head_y[:need])
                self._pending_X[0] = head_X[need:]
                self._pending_y[0] = head_y[need:]
                need = 0
        self._pending_rows -= n_rows
        return np.vstack(taken_X), np.concatenate(taken_y)

    def _extend_history(self, X: np.ndarray, y: np.ndarray) -> None:
        if self._history_X is None:
            self._history_X, self._history_y = X, y
        else:
            self._history_X = np.vstack([self._history_X, X])
            self._history_y = np.concatenate([self._history_y, y])
        if len(self._history_X) > self.max_history:
            self._history_X = self._history_X[-self.max_history:]
            self._history_y = self._history_y[-self.max_history:]

    def _history_fittable(self) -> bool:
        y = self._history_y
        if y is None or len(y) < self.min_train_epochs:
            return False
        counts = np.bincount(y, minlength=2)
        return len(counts[counts > 0]) >= 2 and counts.min() >= _MIN_CLASS_ROWS

    def _refit(self, seed: int) -> None:
        """Fit a fresh pipeline (model + explainer) on the history."""
        from repro.core.matrix import default_explainer_kwargs

        kwargs = {
            **default_explainer_kwargs(self.explainer_method),
            **self.explainer_kwargs,
        }
        if self.explainer_method in STOCHASTIC_EXPLAINERS:
            kwargs.setdefault("random_state", seed)
        dataset = _HistoryDataset(
            self._history_X, self._history_y, self._feature_names
        )
        pipeline = NFVExplainabilityPipeline(
            self.model_factory(),
            explainer_method=self.explainer_method,
            explainer_kwargs=kwargs,
            threshold=self.threshold,
            random_state=seed,
        ).fit(dataset)
        resolved = pipeline.explainer_.method_name
        if self.explainer_method == "auto" and resolved in STOCHASTIC_EXPLAINERS:
            # ``auto`` resolved to a sampled method only after the fit;
            # rebuild the explainer seeded (and budgeted) under its
            # resolved name so the determinism contract holds for
            # ``explainer_method="auto"`` too
            kwargs = {
                **default_explainer_kwargs(resolved),
                **self.explainer_kwargs,
            }
            kwargs.setdefault("random_state", seed)
            pipeline = pipeline.with_explainer(resolved, **kwargs)
        self._pipeline = pipeline
        self._test_accuracy = float(pipeline.test_score_)
        self._windows_since_refit = 0

    def _explain_window(
        self, X: np.ndarray, y: np.ndarray, executor
    ) -> tuple[int, int, float | None, str | None, float | None]:
        """Diagnose the window's violations; update attribution drift.

        Returns ``(n_explained, n_alerts, mean_score, top_feature,
        attribution_shift)``.
        """
        if (
            self._pipeline is None
            or self.explain_per_window == 0
        ):
            return 0, 0, None, None, None
        rows = np.flatnonzero(y == 1)[: self.explain_per_window]
        if len(rows) == 0:
            return 0, 0, None, None, None
        diagnoses = self._pipeline.diagnose_batch(X[rows], executor=executor)
        n_alerts = int(sum(d.alert for d in diagnoses))
        mean_score = float(np.mean([d.prediction for d in diagnoses]))
        A = np.vstack([d.explanation.values for d in diagnoses])
        profile = np.abs(A).mean(axis=0)
        total = profile.sum()
        if total <= 0:
            # every attribution was exactly zero: there is no "top
            # feature" to name, and a zero profile must not become the
            # drift reference for the next window
            return len(rows), n_alerts, mean_score, None, None
        profile = profile / total
        top_feature = self._feature_names[int(np.argmax(profile))]
        shift = None
        previous = self._previous_profile
        if previous is not None:
            denom = float(np.linalg.norm(profile) * np.linalg.norm(previous))
            if denom > 0:
                shift = float(1.0 - np.dot(profile, previous) / denom)
        self._previous_profile = profile
        return len(rows), n_alerts, mean_score, top_feature, shift

    def _process_window(self, n_rows: int, executor) -> StreamWindow:
        # feeds only StreamWindow.seconds, dropped by
        # format_table(timing=False) — the determinism-golden surface
        start = time.perf_counter()  # repro: lint-ignore[D103] opt-out via timing=False
        index = self._window_index
        seed = self._window_seed(index)
        X, y = self._pop_window(n_rows)
        start_epoch = self._epoch
        self._epoch += n_rows
        self._extend_history(X, y)

        if self._pipeline is not None:
            self._windows_since_refit += 1
        refit = False
        if self._history_fittable() and (
            self._pipeline is None
            or self._windows_since_refit >= self.refit_every
        ):
            self._refit(seed)
            refit = True

        n_explained, n_alerts, mean_score, top_feature, shift = (
            self._explain_window(X, y, executor)
        )
        violation_rate = float(np.mean(y)) if len(y) else 0.0
        violation_drift = self.violation_detector.update(violation_rate)
        attribution_drift = (
            self.attribution_detector.update(shift)
            if shift is not None
            else False
        )

        window = StreamWindow(
            index=index,
            start_epoch=start_epoch,
            end_epoch=start_epoch + n_rows,
            violation_rate=violation_rate,
            refit=refit,
            seed=seed,
            test_accuracy=self._test_accuracy,
            n_explained=n_explained,
            n_alerts=n_alerts,
            mean_score=mean_score,
            top_feature=top_feature,
            attribution_shift=shift,
            violation_drift=violation_drift,
            attribution_drift=attribution_drift,
            seconds=time.perf_counter() - start,  # repro: lint-ignore[D103] opt-out via timing=False
        )
        self._window_index += 1
        self.windows.append(window)
        return window

    # ------------------------------------------------------------------
    @property
    def pending_epochs(self) -> int:
        """Epochs ingested but not yet closed into a window."""
        return self._pending_rows

    @property
    def epochs_seen(self) -> int:
        """Total epochs ingested over the engine's lifetime (windowed
        plus pending)."""
        return self._epoch + self._pending_rows

    def ingest(self, batch) -> int:
        """Buffer one epoch batch without closing any windows; returns
        the pending epoch count.

        The enqueue half of :meth:`process_batch`, split out so callers
        that bound their queues (:class:`repro.serve.TenantSession`)
        can admit telemetry and defer the expensive window processing —
        or refuse admission entirely — as separate decisions.

        Batches failing a named data check raise
        :class:`MalformedBatchError` under the default
        ``on_malformed="raise"`` policy; under ``"skip"`` the batch is
        dropped before touching any engine state and the skip recorded
        as a named :class:`StreamEvent` — the engine's bytes continue
        exactly as if the batch had never arrived.
        """
        try:
            self._ingest(batch)
        except MalformedBatchError as err:
            if self.on_malformed != "skip":
                raise
            self.events.append(
                StreamEvent(
                    kind="skipped-batch",
                    check=err.check,
                    epoch=self.epochs_seen,
                    detail=str(err),
                )
            )
        return self._pending_rows

    def process_pending(self, executor=None) -> list[StreamWindow]:
        """Close every complete window currently in the pending buffer.

        The drain half of :meth:`process_batch`; a trailing partial
        window stays pending (see :meth:`flush`).
        """
        windows = []
        while self._pending_rows >= self.window_epochs:
            windows.append(self._process_window(self.window_epochs, executor))
        return windows

    def process_batch(self, batch, executor=None) -> list[StreamWindow]:
        """Ingest one epoch batch; emit every window it completes.

        The incremental entry point: feed batches as they arrive and
        act on the returned windows (alerts, drift alarms).  Windows
        close only when ``window_epochs`` epochs have accumulated —
        batch boundaries never leak into window boundaries.
        """
        self.ingest(batch)
        return self.process_pending(executor)

    def flush(self, executor=None) -> list[StreamWindow]:
        """Close the trailing partial window, if any epochs are pending."""
        if self._pending_rows == 0:
            return []
        return [self._process_window(self._pending_rows, executor)]

    def run(self, stream, *, progress=None, executor=None) -> StreamReport:
        """Consume a whole stream and return its :class:`StreamReport`.

        ``stream`` is any iterable of epoch batches; a trailing partial
        window is flushed at the end.  ``progress`` is an optional
        ``callable(str)`` receiving one line per closed window.  The
        report covers only the windows closed by *this* call — the
        engine keeps its state, so successive ``run`` calls continue
        the same logical stream (use :meth:`reset` to start over).

        ``executor`` lets the caller supply (and keep ownership of) an
        executor — e.g. a :class:`repro.resilience.ResilientExecutor`
        for fault-tolerant dispatch; the caller closes it.  ``None``
        builds one from ``backend``/``workers`` and closes it with the
        run.
        """
        first = len(self.windows)
        first_event = len(self.events)
        scenario = getattr(getattr(stream, "spec", None), "name", None)

        def emit(windows):
            if progress is not None:
                for w in windows:
                    progress(
                        f"window {w.index} [{w.start_epoch}-{w.end_epoch}): "
                        f"viol={w.violation_rate:.1%} "
                        f"expl={w.n_explained} alerts={w.n_alerts}"
                        + (" refit" if w.refit else "")
                        + (" DRIFT" if w.violation_drift or w.attribution_drift
                           else "")
                    )

        owned = (
            get_executor(self.backend, self.workers)
            if executor is None
            else contextlib.nullcontext(executor)
        )
        with owned as executor:
            for batch in stream:
                emit(self.process_batch(batch, executor))
            emit(self.flush(executor))
            extras = {"backend": executor.backend, "workers": executor.workers}
            if self._pipeline is not None:
                # voucher: did per-window attribution ride a vectorized
                # explain_batch override (e.g. the packed TreeSHAP
                # kernel) rather than the per-row fallback loop?  Not
                # part of format_table, so the cross-backend byte
                # surface is unchanged.
                from repro.core.explainers import Explainer

                extras["vectorized_attribution"] = (
                    type(self._pipeline.explainer_).explain_batch
                    is not Explainer.explain_batch
                )

        return StreamReport(
            windows=self.windows[first:],
            window_epochs=self.window_epochs,
            refit_every=self.refit_every,
            explainer=self.explainer_method,
            scenario=scenario,
            seed=self.random_state,
            extras=extras,
            events=self.events[first_event:],
        )
