"""Page–Hinkley change detection for streaming diagnosis.

The streaming engine watches two scalar series for concept drift: the
per-window SLA-violation rate, and the window-to-window shift of the
mean attribution profile.  Both are monitored with the Page–Hinkley
test — the classic sequential change-point detector: cheap (O(1) state
per update), parameter-light, and with a clean "no change, no alarm"
guarantee that the property suite pins down
(``tests/core/test_properties_stream.py``).

The test maintains the cumulative deviation of the observed values
from their running mean, discounted by a tolerance ``delta``::

    m_t = sum_{i<=t} (x_i - mean_i - delta)        (upward detector)

and alarms when ``m_t`` exceeds its own running minimum by more than
``threshold`` — i.e. when recent values have been persistently above
the historical mean by more than ``delta`` on average.  The downward
detector mirrors the construction.  On a constant stream every
increment is ``-delta <= 0`` (upward) or ``+delta >= 0`` (downward),
so the gap to the running extremum stays exactly zero and the detector
can never fire — for *any* valid parameters.
"""

from __future__ import annotations

__all__ = ["PageHinkley"]

_DIRECTIONS = ("up", "down", "both")


class PageHinkley:
    """Sequential Page–Hinkley change detector over a scalar stream.

    Parameters
    ----------
    delta:
        Tolerated drift magnitude: deviations from the running mean
        smaller than ``delta`` never accumulate toward an alarm.
    threshold:
        Alarm threshold (``lambda`` in the literature) on the gap
        between the cumulative statistic and its running extremum.
        Larger values trade detection delay for fewer false alarms.
        Must be positive — that is what guarantees silence on a
        constant stream.
    min_samples:
        Updates to observe before alarms may fire (the running mean is
        meaningless on the first few values).
    direction:
        ``"up"`` detects increases (e.g. a violation-rate surge),
        ``"down"`` detects decreases, ``"both"`` runs both detectors.

    After an alarm the detector resets itself (statistics restart from
    scratch), so a persistent shift raises one alarm per stabilization
    rather than an alarm on every subsequent update; :meth:`reset` does
    the same by hand.  Restarts are *monotone*: a reset detector is
    indistinguishable from a freshly constructed one.
    """

    def __init__(
        self,
        *,
        delta: float = 0.005,
        threshold: float = 0.1,
        min_samples: int = 5,
        direction: str = "up",
    ):
        if delta < 0:
            raise ValueError(f"delta must be >= 0, got {delta}")
        if threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {threshold}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        if direction not in _DIRECTIONS:
            raise ValueError(
                f"direction must be one of {_DIRECTIONS}, got {direction!r}"
            )
        self.delta = float(delta)
        self.threshold = float(threshold)
        self.min_samples = int(min_samples)
        self.direction = direction
        self.n_alarms = 0
        self.reset()

    def reset(self) -> None:
        """Restart the statistics from scratch (alarm count persists)."""
        self.n_seen = 0
        self._mean = 0.0
        self._m_up = 0.0
        self._m_up_min = 0.0
        self._m_down = 0.0
        self._m_down_max = 0.0

    @property
    def statistic(self) -> float:
        """Current gap to the running extremum (max over directions,
        never negative); an alarm fires when it exceeds ``threshold``."""
        gap_up = self._m_up - self._m_up_min
        gap_down = self._m_down_max - self._m_down
        if self.direction == "up":
            return gap_up
        if self.direction == "down":
            return gap_down
        return max(gap_up, gap_down)

    def update(self, value: float) -> bool:
        """Observe one value; return ``True`` if drift is detected.

        On detection the internal statistics are reset (see class
        docstring) and ``n_alarms`` is incremented.
        """
        value = float(value)
        self.n_seen += 1
        # incremental running mean *including* the current value
        self._mean += (value - self._mean) / self.n_seen
        self._m_up += value - self._mean - self.delta
        self._m_up_min = min(self._m_up_min, self._m_up)
        self._m_down += value - self._mean + self.delta
        self._m_down_max = max(self._m_down_max, self._m_down)
        if self.n_seen < self.min_samples:
            return False
        if self.statistic > self.threshold:
            self.n_alarms += 1
            self.reset()
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"PageHinkley(delta={self.delta}, threshold={self.threshold}, "
            f"direction={self.direction!r}, n_seen={self.n_seen}, "
            f"n_alarms={self.n_alarms})"
        )
