"""Streaming diagnosis: online SLA-violation explanation.

* :mod:`repro.core.stream.engine` —
  :class:`~repro.core.stream.engine.StreamingDiagnosisEngine`, the
  sliding-window train/explain/drift loop over epoch batches, and its
  :class:`~repro.core.stream.engine.StreamReport`.
* :mod:`repro.core.stream.drift` — the Page–Hinkley change detector
  behind the violation-rate and attribution drift alarms.

See ``docs/streaming.md`` for the API walkthrough and the determinism
contract.
"""

from repro.core.stream.drift import PageHinkley
from repro.core.stream.engine import (
    MALFORMED_CHECKS,
    MalformedBatchError,
    StreamEvent,
    StreamingDiagnosisEngine,
    StreamReport,
    StreamWindow,
    window_seeds,
)

__all__ = [
    "MALFORMED_CHECKS",
    "MalformedBatchError",
    "PageHinkley",
    "StreamEvent",
    "StreamingDiagnosisEngine",
    "StreamReport",
    "StreamWindow",
    "window_seeds",
]
