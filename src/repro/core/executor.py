"""Execution backends for sharded experiments and chunked explanation.

The scenario matrix and the batched explanation engine both reduce to
the same shape of work: a list of independent, deterministic tasks
whose results are reassembled in task order.  This module gives that
shape one abstraction — an :class:`Executor` with an ordered
:meth:`~Executor.map` — and three interchangeable backends:

* :class:`SerialExecutor` — runs tasks inline, in order.  The
  reference semantics every other backend must reproduce exactly.
* :class:`ThreadExecutor` — a thread pool.  Python threads share one
  interpreter, but the heavy lifting here is numpy, which releases the
  GIL inside BLAS/ufunc kernels, so threads pay no pickling cost and
  win whenever the workload is model-evaluation-bound.  Shared state
  (the explainer cache) is protected by a lock, not by luck.
* :class:`ProcessExecutor` — a process pool for interpreter-bound
  work (tree traversals, per-row solves, pure-Python combinatorics).
  Tasks and results cross the boundary by pickling, so task payloads
  must be picklable; worker processes rebuild per-process caches
  instead of inheriting live ones.

Determinism is a contract, not an accident: tasks must be pure
functions of their arguments, and any randomness a shard needs comes
from :func:`repro.utils.rng.spawn_seeds` — integer child seeds derived
from the experiment seed and the shard *index*, never from shared
generator state or completion order.  Under that contract
``executor.map`` returns bit-identical results on every backend, which
``tests/core/test_executor.py`` enforces.

Pick a backend by name through :func:`get_executor` (``"auto"``
resolves to serial for one worker or one usable CPU and to processes
otherwise), and bound parallelism with :func:`available_workers`.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from repro.utils.rng import spawn_seeds

__all__ = [
    "BACKENDS",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "available_workers",
    "get_executor",
]

#: Backend names accepted by :func:`get_executor` (besides ``"auto"``).
BACKENDS = ("serial", "thread", "process")


def available_workers() -> int:
    """CPUs actually usable by this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


class Executor:
    """Ordered-map execution over a fixed worker budget.

    Subclasses implement :meth:`map`; everything else (seeded mapping,
    context management, idempotent shutdown) is shared.  Executors are
    reusable across calls and must be closed (or used as context
    managers) so pool backends release their workers.
    """

    backend: str = "base"

    def __init__(self, workers: int = 1):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)

    def map(self, fn, *iterables) -> list:
        """Apply ``fn`` over ``zip(*iterables)``; results in task order.

        The first raised exception propagates to the caller, matching
        the builtin ``map`` contract on every backend.
        """
        return list(self.imap(fn, *iterables))

    def imap(self, fn, *iterables):
        """Like :meth:`map` but yields results as an ordered iterator,
        so callers can stream progress while later tasks still run."""
        raise NotImplementedError

    def map_seeded(self, fn, items, random_state) -> list:
        """``fn(item, child_seed)`` per item, with deterministic seeds.

        Child seeds come from :func:`repro.utils.rng.spawn_seeds`, so
        shard ``i`` sees the same integer seed on every backend and
        every worker count — the building block for reproducible
        parallel experiments.
        """
        items = list(items)
        return self.map(fn, items, spawn_seeds(random_state, len(items)))

    def submit(self, fn, *args):
        """Dispatch one task; return a future with ``.result(timeout)``.

        The single-task sibling of :meth:`map`, used by
        :class:`repro.resilience.ResilientExecutor` to own dispatch,
        timeout, and retry per task instead of per batch.  Pooled
        backends return the pool's native future; the serial backend
        runs inline and returns an already-resolved
        :class:`_ImmediateFuture`.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release pooled workers (idempotent; serial is a no-op)."""

    def abandon(self) -> None:
        """Release without waiting for in-flight tasks.

        The hung-worker escape hatch: :meth:`close` on a pooled backend
        joins its workers, which never returns if one of them is stuck.
        Default is :meth:`close`; pooled backends override with a
        no-wait shutdown that cancels queued tasks and leaves running
        ones to finish unobserved.
        """
        self.close()

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"{type(self).__name__}(workers={self.workers})"


class _ImmediateFuture:
    """Already-resolved future for :meth:`SerialExecutor.submit`.

    Runs the task inline at construction, capturing the result or the
    exception, plus the task's wall-clock ``duration`` so a resilience
    wrapper can detect post hoc that an inline task blew its timeout
    budget (the serial backend has no second thread to interrupt from).
    """

    def __init__(self, fn, args):
        start = time.perf_counter()  # repro: lint-ignore[D103] feeds post-hoc timeout detection only, never report bytes
        try:
            self._result = fn(*args)
            self._exception = None
        except BaseException as exc:
            self._result = None
            self._exception = exc
        self.duration = time.perf_counter() - start  # repro: lint-ignore[D103] feeds post-hoc timeout detection only, never report bytes

    def result(self, timeout=None):
        """The captured result; re-raises the captured exception."""
        if self._exception is not None:
            raise self._exception
        return self._result

    def cancel(self) -> bool:
        """Already ran — never cancellable."""
        return False

    def done(self) -> bool:
        return True


class SerialExecutor(Executor):
    """Inline execution — the reference backend.

    Accepts (and ignores) a ``workers`` argument so call sites can
    treat every backend uniformly.
    """

    backend = "serial"

    def __init__(self, workers: int = 1):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        super().__init__(workers=1)

    def imap(self, fn, *iterables):
        return (fn(*args) for args in zip(*iterables))

    def submit(self, fn, *args) -> _ImmediateFuture:
        return _ImmediateFuture(fn, args)


class ThreadExecutor(Executor):
    """Thread-pool execution for GIL-releasing (numpy-bound) tasks."""

    backend = "thread"

    def __init__(self, workers: int = 2):
        super().__init__(workers)
        self._pool: ThreadPoolExecutor | None = None
        # pool creation is lazy and executors may be shared across
        # client threads (the serve layer drives one executor from many
        # sessions), so the create-once step must not race
        self._pool_lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="repro-exec"
                )
            return self._pool

    def imap(self, fn, *iterables):
        return self._ensure_pool().map(fn, *iterables)

    def submit(self, fn, *args):
        return self._ensure_pool().submit(fn, *args)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def abandon(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None


class ProcessExecutor(Executor):
    """Process-pool execution for interpreter-bound tasks.

    Tasks, their arguments, and their results are pickled, so the
    mapped function must be a module-level callable (or a bound method
    of a picklable object) — closures and lambdas will raise.  Workers
    are forked where the platform allows it (inheriting ``sys.path``
    and module state), falling back to spawn elsewhere.
    """

    backend = "process"

    def __init__(self, workers: int = 2):
        super().__init__(workers)
        self._pool: ProcessPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                # fork on Linux: workers inherit sys.path and loaded
                # modules for free.  Elsewhere (macOS forks crash under
                # threaded BLAS; Windows has no fork) use the platform
                # default — spawned workers re-import repro, inheriting
                # PYTHONPATH.
                use_fork = (
                    sys.platform.startswith("linux")
                    and "fork" in multiprocessing.get_all_start_methods()
                )
                context = multiprocessing.get_context(
                    "fork" if use_fork else None
                )
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=context
                )
            return self._pool

    def imap(self, fn, *iterables):
        # chunksize=1: tasks here are few and heavy (matrix shards,
        # explanation chunks), so latency balance beats batching
        return self._ensure_pool().map(fn, *iterables, chunksize=1)

    def submit(self, fn, *args):
        return self._ensure_pool().submit(fn, *args)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def abandon(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None


def get_executor(backend: str = "auto", workers: int | None = None) -> Executor:
    """Build an executor by backend name.

    Parameters
    ----------
    backend:
        ``"serial"``, ``"thread"``, ``"process"``, or ``"auto"``.
        ``"auto"`` resolves to serial when ``workers`` is ``None``/1
        (no parallelism requested) *or* when CPU affinity leaves this
        process a single usable core — a process pool on one CPU pays
        fork+pickle overhead for zero speedup, and results are
        backend-identical anyway (the determinism suites prove it), so
        the resolution is timing-only.  Otherwise ``auto`` picks
        processes: the safe default because they speed up both
        interpreter-bound and numpy-bound work.
    workers:
        Worker budget.  ``None`` means 1 for ``auto``/``serial`` and
        :func:`available_workers` for the pooled backends.
    """
    if backend == "auto":
        if workers is None or workers <= 1 or available_workers() <= 1:
            backend = "serial"
        else:
            backend = "process"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose from "
            f"{', '.join(BACKENDS)} or 'auto'"
        )
    if backend == "serial":
        return SerialExecutor()
    if workers is None:
        workers = available_workers()
    if backend == "thread":
        return ThreadExecutor(workers)
    return ProcessExecutor(workers)
