"""Operator-facing textual reports.

Turns attribution math into the artifact the paper actually motivates:
a human-readable diagnosis a NOC operator can act on.
"""

from __future__ import annotations


from repro.nfv.telemetry import vnf_of_feature

__all__ = ["format_local_report", "format_global_report", "format_vnf_table"]


def _direction(value: float) -> str:
    return "raises" if value > 0 else "lowers"


def format_local_report(
    explanation,
    *,
    chain=None,
    top_k: int = 5,
    outcome_name: str = "SLA-violation risk",
    threshold: float | None = 0.5,
) -> str:
    """Render one prediction's explanation as an operator report.

    Parameters
    ----------
    explanation:
        An :class:`~repro.core.explainers.Explanation`.
    chain:
        Optional :class:`~repro.nfv.sfc.ServiceFunctionChain` to resolve
        VNF indices to types.
    """
    lines = []
    lines.append("=" * 62)
    lines.append(f"PREDICTION REPORT  ({explanation.method})")
    lines.append("=" * 62)
    verdict = ""
    if threshold is not None:
        verdict = (
            "  ->  ALERT" if explanation.prediction >= threshold else "  ->  ok"
        )
    lines.append(
        f"{outcome_name}: {explanation.prediction:.3f} "
        f"(baseline {explanation.base_value:.3f}){verdict}"
    )
    lines.append("-" * 62)
    lines.append(f"top {top_k} contributing signals:")
    for name, value in explanation.top_features(top_k):
        vnf = vnf_of_feature(name)
        location = ""
        if vnf is not None and chain is not None:
            inst = chain.instances[vnf]
            location = f" [{inst.vnf_type} @ {inst.server_id}]"
        idx = explanation.feature_names.index(name)
        lines.append(
            f"  {name:<34} = {explanation.x[idx]:>8.3f}  "
            f"{_direction(value)} risk by {abs(value):.3f}{location}"
        )
    lines.append("-" * 62)
    return "\n".join(lines)


def format_vnf_table(vnf_scores: dict[int, float], chain=None) -> str:
    """Render per-VNF aggregated attribution as a ranked table."""
    if not vnf_scores:
        return "(no VNF-level signals)"
    total = sum(abs(v) for v in vnf_scores.values()) or 1.0
    lines = [f"{'rank':>4} {'vnf':>4} {'type':<12} {'score':>8} {'share':>7}"]
    ranked = sorted(vnf_scores.items(), key=lambda kv: (-abs(kv[1]), kv[0]))
    for rank, (vnf, score) in enumerate(ranked, start=1):
        vnf_type = (
            chain.instances[vnf].vnf_type
            if chain is not None and vnf < len(chain.instances)
            else "?"
        )
        lines.append(
            f"{rank:>4} {vnf:>4} {vnf_type:<12} {score:>8.3f} "
            f"{abs(score) / total:>6.1%}"
        )
    return "\n".join(lines)


def format_global_report(global_explanation, top_k: int = 10) -> str:
    """Render dataset-level importances as a bar chart in text."""
    tops = global_explanation.top_features(top_k)
    if not tops:
        return "(no features)"
    max_score = max(score for _, score in tops) or 1.0
    width = 30
    lines = [f"global importance ({global_explanation.method}):"]
    for name, score in tops:
        bar = "#" * max(1, int(round(width * score / max_score)))
        lines.append(f"  {name:<34} {score:>9.4f}  {bar}")
    return "\n".join(lines)
