"""Memoization for the hot, re-payable parts of explanation.

Two costs dominate repeated explanation of the same model:

* **Background predictions** — every SHAP-family explainer starts by
  evaluating the model over its background dataset to get the expected
  value.  Building several explainers (or re-building one per incident)
  re-pays that model sweep each time.
* **Coalition designs** — KernelSHAP's enumeration of coalition masks
  and kernel weights is pure Python combinatorics; it depends only on
  the feature dimension and sampling configuration, never on the
  explained instance.

Both are memoized here, keyed and validated so a hit is safe:

* background predictions are keyed by the *identity* of the predict
  function (held weakly, so a collected model can never alias a new
  one) plus a content fingerprint of the background array; because a
  model can be refit *in place* behind the same predict function,
  every hit is spot-checked by re-predicting the first/middle/last
  background rows and the entry is recomputed on any mismatch (a
  refit that coincides with the old model on all three probe rows is
  undetectable — refit models should get a fresh predict function);
* coalition designs are keyed by ``(d, n_samples, paired, seed)`` and
  cached only for deterministic integer seeds — a live ``Generator``
  must advance, so those requests bypass the cache.

Parallel execution adds two constraints, both handled here:

* **Threads** — the thread backend explains chunks of one fleet
  concurrently through the same module-level cache, so every public
  operation takes an internal lock.  Lookups release it around model
  calls (probes and recomputes); a racing miss computes the same value
  twice and stores it idempotently, which costs a little work, never
  correctness.
* **Processes** — weakref identity keys cannot cross a process
  boundary: a worker that unpickles an explainer gets a brand-new
  predict-function object, so identity lookups silently miss and every
  shard would cold-start its background sweep.  Predict functions that
  expose a ``cache_token()`` (see
  :class:`~repro.core.explainers.ModelOutputFn`) therefore get a
  *fallback* entry keyed by ``(token, background fingerprint)`` — the
  token is built from the model's constructor repr, so a rebuilt
  wrapper around an equal model still hits.  Token collisions (two
  differently-fit models with identical parameters) are rendered
  harmless by the same probe-row spot-check that guards in-place
  refits.

Every tier is LRU-bounded.  Per-function background entries and
coalition designs have had per-key caps from the start
(``max_backgrounds`` / ``max_designs``); ``max_total_entries``
additionally bounds the *total* number of identity-tier background
entries across all predict functions, and ``max_token_entries``
(defaulting to it) bounds the global token-fallback tier the same way.  Without it a long
``repro stream run`` session — which builds a fresh predict function
at every refit window and keeps explainers (and therefore weak keys)
alive in its sliding history — could grow the cache without limit;
with it the oldest entries are evicted and simply recomputed if ever
requested again, so eviction can never change results, only timings.

The module-level singleton is what the explainers use; call
:func:`clear_cache` between unrelated experiments if you want cold
timings, and :func:`cache_stats` to see hit rates.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from collections import OrderedDict

import numpy as np

__all__ = [
    "ExplainerCache",
    "array_fingerprint",
    "background_predictions",
    "cache_stats",
    "clear_cache",
    "coalition_design",
    "get_cache",
]


def array_fingerprint(a) -> str:
    """Content hash of an array (dtype, shape, and bytes).

    Two arrays share a fingerprint iff they are element-wise identical,
    so cache hits can never return results for different data.
    """
    a = np.ascontiguousarray(a)
    digest = hashlib.sha1()
    digest.update(str(a.dtype).encode())
    digest.update(str(a.shape).encode())
    digest.update(a.tobytes())
    return digest.hexdigest()


class ExplainerCache:
    """LRU caches for background predictions and coalition designs.

    Parameters
    ----------
    max_backgrounds:
        Distinct ``(predict_fn, background)`` prediction vectors kept
        per predict function.
    max_designs:
        Distinct coalition designs kept across all explainers.
    max_total_entries:
        Total identity-tier background entries kept across *all*
        predict functions.  The global LRU: with many live predict
        functions (e.g. a streaming session refitting every window),
        the least recently used entries are evicted once this cap is
        reached.  Eviction only ever forces a recompute on the next
        request — it cannot change returned values.
    max_token_entries:
        Total token-fallback entries kept across all cache tokens
        (default: ``max_total_entries``).  The token tier is a *global*
        tier — many tenants' refit models share it — so bounding it by
        the per-function ``max_backgrounds`` cap (the pre-PR-8 bug)
        made concurrent sessions thrash each other's entries and forced
        process shards to cold-start their background sweeps.
    """

    def __init__(
        self,
        *,
        max_backgrounds: int = 32,
        max_designs: int = 64,
        max_total_entries: int = 256,
        max_token_entries: int | None = None,
    ):
        if max_token_entries is None:
            max_token_entries = max_total_entries
        if (
            max_backgrounds < 1
            or max_designs < 1
            or max_total_entries < 1
            or max_token_entries < 1
        ):
            raise ValueError("cache sizes must be >= 1")
        self.max_backgrounds = int(max_backgrounds)
        self.max_designs = int(max_designs)
        self.max_total_entries = int(max_total_entries)
        self.max_token_entries = int(max_token_entries)
        # predict_fn (weak) -> OrderedDict[fingerprint -> predictions]
        self._backgrounds: "weakref.WeakKeyDictionary" = (
            weakref.WeakKeyDictionary()
        )
        # global LRU over identity-tier entries: (weakref, fingerprint)
        # in least-recently-used-first order.  Entries whose referent
        # died linger until they age out of the front; they are skipped
        # (their predictions already vanished with the weak key).
        self._bg_order: OrderedDict[tuple, None] = OrderedDict()
        # (cache_token, fingerprint) -> predictions; survives the loss
        # of object identity across pickling/process boundaries
        self._background_tokens: OrderedDict[tuple, np.ndarray] = OrderedDict()
        self._designs: OrderedDict[tuple, tuple] = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.token_evictions = 0

    # -- background predictions ---------------------------------------
    @staticmethod
    def _token_of(predict_fn) -> str | None:
        """The predict function's ``cache_token()``, when it offers one."""
        token_fn = getattr(predict_fn, "cache_token", None)
        if callable(token_fn):
            return str(token_fn())
        return None

    @staticmethod
    def _probe_matches(predict_fn, background, cached) -> bool:
        """Spot-check a cached entry against live predictions on the
        first, middle, and last background rows."""
        if len(background) == 0:
            return True
        idx = sorted({0, len(background) // 2, len(background) - 1})
        probe = np.asarray(predict_fn(background[idx]), dtype=float)
        return probe.shape == cached[idx].shape and np.array_equal(
            probe, cached[idx]
        )

    # -- global LRU over identity-tier entries (caller holds the lock) --
    def _note_use(self, predict_fn, key: str) -> None:
        """Mark an identity-tier entry as most recently used."""
        try:
            order_key = (weakref.ref(predict_fn), key)
        except TypeError:  # not weak-referenceable: not in this tier
            return
        if order_key in self._bg_order:
            self._bg_order.move_to_end(order_key)

    def _forget_entry(self, predict_fn, key: str) -> None:
        """Drop an identity-tier entry from the global LRU order."""
        try:
            self._bg_order.pop((weakref.ref(predict_fn), key), None)
        except TypeError:
            pass

    def _record_entry(self, predict_fn, key: str) -> None:
        """Register a fresh identity-tier entry, then evict the global
        LRU down to ``max_total_entries``."""
        try:
            order_key = (weakref.ref(predict_fn), key)
        except TypeError:
            return
        self._bg_order[order_key] = None
        self._bg_order.move_to_end(order_key)
        while len(self._bg_order) > self.max_total_entries:
            (ref, old_key), _ = self._bg_order.popitem(last=False)
            fn = ref()
            if fn is None:
                continue  # predictions already died with the weak key
            per_fn = self._backgrounds.get(fn)
            if per_fn is not None and per_fn.pop(old_key, None) is not None:
                self.evictions += 1

    def _store_token(self, token: str, key: str, preds: np.ndarray) -> None:
        """Insert/refresh a token-fallback entry (caller holds the lock).

        The tier has its own LRU bound, ``max_token_entries`` — *not*
        the per-function ``max_backgrounds`` cap: token entries are
        global across every model in the process, and a multi-tenant
        service refitting many sessions would otherwise thrash them.
        """
        self._background_tokens[(token, key)] = preds
        self._background_tokens.move_to_end((token, key))
        while len(self._background_tokens) > self.max_token_entries:
            self._background_tokens.popitem(last=False)
            self.token_evictions += 1

    def background_predictions(self, predict_fn, background) -> np.ndarray:
        """``predict_fn(background)`` memoized by function identity and
        background content.  Returns a read-only 1-D float array.

        Lookup is two-tier.  The primary key is the *identity* of
        ``predict_fn`` (held weakly).  Identity does not survive
        pickling — every process-backend shard unpickles a fresh
        function object — so functions exposing ``cache_token()``
        (e.g. :class:`~repro.core.explainers.ModelOutputFn`) also get a
        fallback entry keyed by ``(token, background fingerprint)``,
        which a rebuilt wrapper around an equal model still hits.

        Every hit from either tier is spot-checked by re-predicting the
        first, middle, and last background rows: if the model behind
        ``predict_fn`` was refit in place (or a token collision aliases
        two models with equal constructor parameters), any mismatch
        discards the entry instead of serving stale predictions.  A
        wrong model that coincides with the cached one on all three
        probe rows is undetectable — build a fresh predict function for
        a refit model to be certain.

        Identity-tier entries across all predict functions share one
        global LRU bounded by ``max_total_entries``; the least recently
        used entries are evicted (and recomputed if requested again),
        so long-running sessions cannot grow the cache without limit.

        Thread-safe: bookkeeping happens under the cache lock, model
        calls (probes, recomputes) outside it.
        """
        background = np.asarray(background, dtype=float)
        key = array_fingerprint(background)
        token = self._token_of(predict_fn)
        cached = None
        uncacheable = False
        with self._lock:
            try:
                per_fn = self._backgrounds.get(predict_fn)
            except TypeError:  # not weak-referenceable
                per_fn = None
                if token is None:  # and no token either -> uncacheable
                    self.misses += 1
                    uncacheable = True
            if not uncacheable:
                if per_fn is not None and key in per_fn:
                    cached = per_fn[key]
                elif token is not None:
                    cached = self._background_tokens.get((token, key))
        if uncacheable:  # model call outside the lock
            return np.asarray(predict_fn(background), dtype=float)
        if cached is not None:
            if self._probe_matches(predict_fn, background, cached):
                with self._lock:
                    self.hits += 1
                    if per_fn is not None and key in per_fn:
                        per_fn.move_to_end(key)
                        self._note_use(predict_fn, key)
                    if token is not None:
                        self._store_token(token, key, cached)
                return cached
            with self._lock:  # model changed behind the key(s)
                if per_fn is not None:
                    per_fn.pop(key, None)
                    self._forget_entry(predict_fn, key)
                if token is not None:
                    self._background_tokens.pop((token, key), None)
        preds = np.asarray(predict_fn(background), dtype=float).copy()
        preds.flags.writeable = False
        with self._lock:
            self.misses += 1
            try:
                per_fn = self._backgrounds.get(predict_fn)
                if per_fn is None:
                    per_fn = OrderedDict()
                    self._backgrounds[predict_fn] = per_fn
                per_fn[key] = preds
                self._record_entry(predict_fn, key)
                while len(per_fn) > self.max_backgrounds:
                    evicted_key, _ = per_fn.popitem(last=False)
                    self._forget_entry(predict_fn, evicted_key)
            except TypeError:  # not weak-referenceable: token tier only
                pass
            if token is not None:
                self._store_token(token, key, preds)
        return preds

    # -- coalition designs --------------------------------------------
    def coalition_design(self, key: tuple, build_fn):
        """Memoize ``build_fn() -> (masks, weights)`` under ``key``.

        ``key`` must fully determine the design (feature dimension,
        sample budget, pairing, integer seed).  Arrays are stored
        read-only and shared between callers.
        """
        with self._lock:
            if key in self._designs:
                self.hits += 1
                self._designs.move_to_end(key)
                return self._designs[key]
        # build outside the lock: racing threads may build the same
        # design twice, but it is deterministic, so either copy is valid
        masks, weights = build_fn()
        masks = np.asarray(masks)
        weights = np.asarray(weights, dtype=float)
        masks.flags.writeable = False
        weights.flags.writeable = False
        with self._lock:
            self.misses += 1
            if key not in self._designs:
                self._designs[key] = (masks, weights)
            while len(self._designs) > self.max_designs:
                self._designs.popitem(last=False)
            return self._designs[key]

    # -- bookkeeping ---------------------------------------------------
    def resize(
        self,
        *,
        max_backgrounds: int | None = None,
        max_designs: int | None = None,
        max_total_entries: int | None = None,
        max_token_entries: int | None = None,
    ) -> None:
        """Re-bound one or more tiers in place (omitted caps keep their
        current value).

        Shrinking a tier evicts its least recently used entries down to
        the new cap immediately; growing takes effect on the next
        insert.  Used by :class:`repro.serve.DiagnosisService` to size
        the shared cross-session cache to the tenant count — eviction
        only ever costs recomputes, never changes returned values.
        """
        with self._lock:
            for name, value in (
                ("max_backgrounds", max_backgrounds),
                ("max_designs", max_designs),
                ("max_total_entries", max_total_entries),
                ("max_token_entries", max_token_entries),
            ):
                if value is None:
                    continue
                if value < 1:
                    raise ValueError("cache sizes must be >= 1")
                setattr(self, name, int(value))
            while len(self._background_tokens) > self.max_token_entries:
                self._background_tokens.popitem(last=False)
                self.token_evictions += 1
            while len(self._designs) > self.max_designs:
                self._designs.popitem(last=False)
            while len(self._bg_order) > self.max_total_entries:
                (ref, old_key), _ = self._bg_order.popitem(last=False)
                fn = ref()
                if fn is None:
                    continue
                per_fn = self._backgrounds.get(fn)
                if per_fn is not None and per_fn.pop(old_key, None) is not None:
                    self.evictions += 1
            # per-function max_backgrounds is enforced on insert: live
            # oversize per-fn dicts shrink as their functions are next
            # stored into, which preserves the hottest entries

    def clear(self) -> None:
        """Drop every cached entry and reset the hit/miss counters."""
        with self._lock:
            self._backgrounds.clear()
            self._bg_order.clear()
            self._background_tokens.clear()
            self._designs.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.token_evictions = 0

    def stats(self) -> dict:
        """Hit/miss counters and current entry counts."""
        with self._lock:
            n_bg = sum(len(d) for d in self._backgrounds.values())
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "token_evictions": self.token_evictions,
                "background_entries": n_bg,
                "background_token_entries": len(self._background_tokens),
                "design_entries": len(self._designs),
            }


_GLOBAL_CACHE = ExplainerCache()


def get_cache() -> ExplainerCache:
    """The process-wide cache shared by all explainers."""
    return _GLOBAL_CACHE


def background_predictions(predict_fn, background) -> np.ndarray:
    """Module-level shortcut to the global cache."""
    return _GLOBAL_CACHE.background_predictions(predict_fn, background)


def coalition_design(key: tuple, build_fn):
    """Module-level shortcut to the global cache."""
    return _GLOBAL_CACHE.coalition_design(key, build_fn)


def clear_cache() -> None:
    """Reset the global cache (useful between timed experiments)."""
    _GLOBAL_CACHE.clear()


def cache_stats() -> dict:
    """Hit/miss statistics of the global cache."""
    return _GLOBAL_CACHE.stats()
