"""Explanation containers and the explainer interface."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Explanation", "GlobalExplanation", "Explainer", "model_output_fn"]


@dataclass
class Explanation:
    """A local (per-prediction) feature attribution.

    Attributes
    ----------
    feature_names:
        One name per feature, aligned with ``values``.
    values:
        Signed attribution per feature; positive pushes the model output
        up, negative pulls it down.
    base_value:
        The explainer's reference output (e.g. the expected model output
        over the background data).
    prediction:
        Model output at ``x``.  For additive explainers
        ``base_value + values.sum() == prediction`` (the efficiency
        axiom); :meth:`additivity_gap` measures any deviation.
    x:
        The explained instance.
    method:
        Explainer name (``"kernel_shap"``, ``"lime"``, ...).
    extras:
        Method-specific diagnostics (LIME fidelity, sample counts, ...).
    """

    feature_names: list[str]
    values: np.ndarray
    base_value: float
    prediction: float
    x: np.ndarray
    method: str
    extras: dict = field(default_factory=dict)

    def __post_init__(self):
        self.values = np.asarray(self.values, dtype=float)
        self.x = np.asarray(self.x, dtype=float).ravel()
        if len(self.feature_names) != len(self.values):
            raise ValueError(
                f"{len(self.feature_names)} names for {len(self.values)} values"
            )
        if len(self.x) != len(self.values):
            raise ValueError(
                f"x has {len(self.x)} features but {len(self.values)} attributions"
            )

    @property
    def n_features(self) -> int:
        return len(self.values)

    def additivity_gap(self) -> float:
        """``|base_value + sum(values) - prediction|`` — zero for exact
        additive explainers (Shapley efficiency)."""
        return float(abs(self.base_value + self.values.sum() - self.prediction))

    def top_features(self, k: int = 5, *, by_abs: bool = True):
        """The ``k`` largest attributions as ``(name, value)`` pairs."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        key = np.abs(self.values) if by_abs else self.values
        order = np.argsort(-key)[:k]
        return [(self.feature_names[i], float(self.values[i])) for i in order]

    def ranking(self) -> np.ndarray:
        """Feature indices sorted by decreasing |attribution|."""
        return np.argsort(-np.abs(self.values))

    def as_dict(self) -> dict[str, float]:
        """``{feature_name: attribution}``."""
        return dict(zip(self.feature_names, map(float, self.values)))

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        top = ", ".join(f"{n}={v:+.3f}" for n, v in self.top_features(3))
        return (
            f"Explanation(method={self.method!r}, prediction={self.prediction:.4f}, "
            f"base={self.base_value:.4f}, top=[{top}])"
        )


@dataclass
class GlobalExplanation:
    """Dataset-level feature importance."""

    feature_names: list[str]
    importances: np.ndarray
    method: str
    extras: dict = field(default_factory=dict)

    def __post_init__(self):
        self.importances = np.asarray(self.importances, dtype=float)
        if len(self.feature_names) != len(self.importances):
            raise ValueError(
                f"{len(self.feature_names)} names for "
                f"{len(self.importances)} importances"
            )

    def top_features(self, k: int = 10):
        """The ``k`` most important features as ``(name, score)`` pairs."""
        order = np.argsort(-self.importances)[:k]
        return [
            (self.feature_names[i], float(self.importances[i])) for i in order
        ]

    def as_dict(self) -> dict[str, float]:
        return dict(zip(self.feature_names, map(float, self.importances)))


class Explainer:
    """Interface all local explainers implement.

    Subclasses implement :meth:`explain` for one instance;
    :meth:`explain_batch` and :meth:`global_importance` have default
    implementations built on it.
    """

    method_name: str = "explainer"

    def explain(self, x) -> Explanation:
        raise NotImplementedError

    def explain_batch(self, X) -> list[Explanation]:
        """Explain each row of ``X``."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        return [self.explain(row) for row in X]

    def global_importance(self, X) -> GlobalExplanation:
        """Mean |local attribution| over the rows of ``X`` — the standard
        SHAP-style global importance summary."""
        explanations = self.explain_batch(X)
        importances = np.mean(
            [np.abs(e.values) for e in explanations], axis=0
        )
        return GlobalExplanation(
            feature_names=explanations[0].feature_names,
            importances=importances,
            method=f"mean_abs_{self.method_name}",
        )


def model_output_fn(model, *, output: str = "auto", class_index: int = 1):
    """Wrap a fitted model into ``f(X) -> 1-D scores`` for explainers.

    Parameters
    ----------
    output:
        ``"auto"`` — probability of ``class_index`` for classifiers,
        raw prediction for regressors;
        ``"proba"`` — ``predict_proba[:, class_index]``;
        ``"margin"`` — ``decision_function`` (column ``class_index`` if 2-D);
        ``"predict"`` — raw ``predict`` (must be numeric).
    class_index:
        Which column of the probability/margin matrix to explain.
    """
    if output not in ("auto", "proba", "margin", "predict"):
        raise ValueError(f"unknown output {output!r}")
    if output == "auto":
        output = "proba" if hasattr(model, "predict_proba") else "predict"
    if output == "proba":
        if not hasattr(model, "predict_proba"):
            raise ValueError(f"{type(model).__name__} has no predict_proba")

        def fn(X):
            proba = model.predict_proba(np.atleast_2d(X))
            return proba[:, class_index]

    elif output == "margin":
        if not hasattr(model, "decision_function"):
            raise ValueError(f"{type(model).__name__} has no decision_function")

        def fn(X):
            margin = model.decision_function(np.atleast_2d(X))
            if margin.ndim == 2:
                return margin[:, class_index]
            return margin

    else:

        def fn(X):
            return np.asarray(model.predict(np.atleast_2d(X)), dtype=float)

    return fn
