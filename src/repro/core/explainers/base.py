"""Explanation containers and the explainer interface."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "BatchExplanation",
    "Explanation",
    "GlobalExplanation",
    "Explainer",
    "ModelOutputFn",
    "model_output_fn",
]


@dataclass
class Explanation:
    """A local (per-prediction) feature attribution.

    Attributes
    ----------
    feature_names:
        One name per feature, aligned with ``values``.
    values:
        Signed attribution per feature; positive pushes the model output
        up, negative pulls it down.
    base_value:
        The explainer's reference output (e.g. the expected model output
        over the background data).
    prediction:
        Model output at ``x``.  For additive explainers
        ``base_value + values.sum() == prediction`` (the efficiency
        axiom); :meth:`additivity_gap` measures any deviation.
    x:
        The explained instance.
    method:
        Explainer name (``"kernel_shap"``, ``"lime"``, ...).
    extras:
        Method-specific diagnostics (LIME fidelity, sample counts, ...).
    """

    feature_names: list[str]
    values: np.ndarray
    base_value: float
    prediction: float
    x: np.ndarray
    method: str
    extras: dict = field(default_factory=dict)

    def __post_init__(self):
        self.values = np.asarray(self.values, dtype=float)
        self.x = np.asarray(self.x, dtype=float).ravel()
        if len(self.feature_names) != len(self.values):
            raise ValueError(
                f"{len(self.feature_names)} names for {len(self.values)} values"
            )
        if len(self.x) != len(self.values):
            raise ValueError(
                f"x has {len(self.x)} features but {len(self.values)} attributions"
            )

    @property
    def n_features(self) -> int:
        return len(self.values)

    def additivity_gap(self) -> float:
        """``|base_value + sum(values) - prediction|`` — zero for exact
        additive explainers (Shapley efficiency)."""
        return float(abs(self.base_value + self.values.sum() - self.prediction))

    def top_features(self, k: int = 5, *, by_abs: bool = True):
        """The ``k`` largest attributions as ``(name, value)`` pairs."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        key = np.abs(self.values) if by_abs else self.values
        order = np.argsort(-key)[:k]
        return [(self.feature_names[i], float(self.values[i])) for i in order]

    def ranking(self) -> np.ndarray:
        """Feature indices sorted by decreasing |attribution|."""
        return np.argsort(-np.abs(self.values))

    def as_dict(self) -> dict[str, float]:
        """``{feature_name: attribution}``."""
        return dict(zip(self.feature_names, map(float, self.values)))

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        top = ", ".join(f"{n}={v:+.3f}" for n, v in self.top_features(3))
        return (
            f"Explanation(method={self.method!r}, prediction={self.prediction:.4f}, "
            f"base={self.base_value:.4f}, top=[{top}])"
        )


@dataclass
class GlobalExplanation:
    """Dataset-level feature importance."""

    feature_names: list[str]
    importances: np.ndarray
    method: str
    extras: dict = field(default_factory=dict)

    def __post_init__(self):
        self.importances = np.asarray(self.importances, dtype=float)
        if len(self.feature_names) != len(self.importances):
            raise ValueError(
                f"{len(self.feature_names)} names for "
                f"{len(self.importances)} importances"
            )

    def top_features(self, k: int = 10):
        """The ``k`` most important features as ``(name, score)`` pairs."""
        order = np.argsort(-self.importances)[:k]
        return [
            (self.feature_names[i], float(self.importances[i])) for i in order
        ]

    def as_dict(self) -> dict[str, float]:
        return dict(zip(self.feature_names, map(float, self.importances)))


@dataclass
class BatchExplanation:
    """Attributions for a whole batch of instances, stored as matrices.

    The vectorized counterpart of :class:`Explanation`: one explainer
    call over ``n`` rows yields an ``(n, d)`` attribution matrix instead
    of ``n`` separate objects, so downstream consumers (global
    importance, per-VNF aggregation, reporting) can stay in numpy.

    Attributes
    ----------
    feature_names:
        One name per feature (column of ``values``).
    values:
        ``(n_samples, n_features)`` signed attributions.
    base_values:
        Per-sample explainer reference output, shape ``(n_samples,)``.
    predictions:
        Per-sample model output, shape ``(n_samples,)``.
    X:
        The explained instances, shape ``(n_samples, n_features)``.
    method:
        Explainer name (``"kernel_shap"``, ``"lime"``, ...).
    extras:
        Batch-level diagnostics shared by all samples.
    sample_extras:
        Optional per-sample diagnostics (one dict per row).

    Iterating or indexing materializes per-sample :class:`Explanation`
    views, so a ``BatchExplanation`` drops into any code written for
    ``list[Explanation]``.
    """

    feature_names: list[str]
    values: np.ndarray
    base_values: np.ndarray
    predictions: np.ndarray
    X: np.ndarray
    method: str
    extras: dict = field(default_factory=dict)
    sample_extras: list[dict] | None = None

    def __post_init__(self):
        self.values = np.atleast_2d(np.asarray(self.values, dtype=float))
        self.base_values = np.asarray(self.base_values, dtype=float).ravel()
        self.predictions = np.asarray(self.predictions, dtype=float).ravel()
        self.X = np.atleast_2d(np.asarray(self.X, dtype=float))
        n, d = self.values.shape
        if len(self.feature_names) != d:
            raise ValueError(
                f"{len(self.feature_names)} names for {d} attribution columns"
            )
        if self.X.shape != (n, d) and not (n == 0 and self.X.size == 0):
            raise ValueError(
                f"X has shape {self.X.shape}, expected {(n, d)}"
            )
        if len(self.base_values) != n or len(self.predictions) != n:
            raise ValueError(
                f"{len(self.base_values)} base values and "
                f"{len(self.predictions)} predictions for {n} samples"
            )
        if self.sample_extras is not None and len(self.sample_extras) != n:
            raise ValueError(
                f"{len(self.sample_extras)} sample_extras for {n} samples"
            )

    @classmethod
    def concat(cls, batches) -> "BatchExplanation":
        """Stitch row-chunk batches back into one batch, in order.

        The inverse of slicing a fleet into dispatch chunks: values,
        base values, predictions, and instances are concatenated along
        the sample axis.  Batch-level ``extras`` are taken from the
        first chunk (chunks of one logical batch share their setup
        diagnostics); per-sample extras are concatenated when every
        chunk carries them.
        """
        batches = list(batches)
        if not batches:
            raise ValueError(
                "cannot concatenate zero batches without feature names; "
                "construct a BatchExplanation directly"
            )
        first = batches[0]
        for b in batches[1:]:
            if b.feature_names != first.feature_names:
                raise ValueError("cannot concatenate batches with "
                                 "different feature names")
            if b.method != first.method:
                raise ValueError(
                    f"cannot concatenate {first.method!r} with {b.method!r}"
                )
        if len(batches) == 1:
            return first
        sample_extras = None
        if all(b.sample_extras is not None for b in batches):
            sample_extras = [e for b in batches for e in b.sample_extras]
        return cls(
            feature_names=first.feature_names,
            values=np.vstack([b.values for b in batches]),
            base_values=np.concatenate([b.base_values for b in batches]),
            predictions=np.concatenate([b.predictions for b in batches]),
            X=np.vstack([b.X for b in batches]),
            method=first.method,
            extras=dict(first.extras),
            sample_extras=sample_extras,
        )

    @classmethod
    def from_explanations(cls, explanations, *, method=None) -> "BatchExplanation":
        """Stack per-sample :class:`Explanation` objects into one batch."""
        explanations = list(explanations)
        if not explanations:
            raise ValueError(
                "cannot build a BatchExplanation from zero explanations "
                "without feature names; construct one directly"
            )
        first = explanations[0]
        return cls(
            feature_names=first.feature_names,
            values=np.vstack([e.values for e in explanations]),
            base_values=np.array([e.base_value for e in explanations]),
            predictions=np.array([e.prediction for e in explanations]),
            X=np.vstack([e.x for e in explanations]),
            method=method if method is not None else first.method,
            sample_extras=[e.extras for e in explanations],
        )

    @property
    def n_samples(self) -> int:
        return self.values.shape[0]

    @property
    def n_features(self) -> int:
        return self.values.shape[1]

    def __len__(self) -> int:
        return self.n_samples

    def __getitem__(self, index) -> "Explanation | list[Explanation]":
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self.n_samples))]
        index = int(index)
        if index < 0:
            index += self.n_samples
        if not 0 <= index < self.n_samples:
            raise IndexError(
                f"sample {index} out of range for {self.n_samples} samples"
            )
        extras = dict(self.extras)
        if self.sample_extras is not None:
            extras.update(self.sample_extras[index])
        return Explanation(
            feature_names=self.feature_names,
            values=self.values[index],
            base_value=float(self.base_values[index]),
            prediction=float(self.predictions[index]),
            x=self.X[index],
            method=self.method,
            extras=extras,
        )

    def __iter__(self):
        return (self[i] for i in range(self.n_samples))

    def to_list(self) -> list[Explanation]:
        """Materialize every sample as an :class:`Explanation`."""
        return list(self)

    def additivity_gaps(self) -> np.ndarray:
        """Per-sample ``|base + sum(values) - prediction|``."""
        return np.abs(
            self.base_values + self.values.sum(axis=1) - self.predictions
        )

    def global_importance(self) -> GlobalExplanation:
        """Mean |attribution| per feature over the batch."""
        if self.n_samples == 0:
            raise ValueError("cannot summarize an empty batch")
        return GlobalExplanation(
            feature_names=self.feature_names,
            importances=np.abs(self.values).mean(axis=0),
            method=f"mean_abs_{self.method}",
            extras={"n_samples": self.n_samples},
        )

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"BatchExplanation(method={self.method!r}, "
            f"n_samples={self.n_samples}, n_features={self.n_features})"
        )


class Explainer:
    """Interface all local explainers implement.

    Subclasses implement :meth:`explain` for one instance;
    :meth:`explain_batch` and :meth:`global_importance` have default
    implementations built on it.  Explainers whose cost is dominated by
    per-call setup (coalition enumeration, background evaluation,
    perturbation sampling) override :meth:`explain_batch` with a truly
    vectorized path that pays that setup once per batch.
    """

    method_name: str = "explainer"

    #: Rows per chunk when a batch is dispatched to an executor.  Sized
    #: so one chunk times a typical background stays inside the
    #: explainers' stacked-model-call row budgets (``_ROW_BUDGET``),
    #: and deliberately *independent* of the backend and worker count:
    #: identical chunk boundaries are what make serial, thread, and
    #: process results of :meth:`explain_batch_chunked` bit-identical.
    batch_dispatch_rows: int = 16

    def explain(self, x) -> Explanation:
        raise NotImplementedError

    def _check_batch(self, X, expected_d: int | None = None) -> np.ndarray:
        """Validate batch input: a float 2-D array (possibly 0 rows)
        with ``expected_d`` feature columns when given."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if expected_d is not None and X.shape[1] != expected_d:
            raise ValueError(
                f"X has {X.shape[1]} features, expected {expected_d}"
            )
        return X

    def _empty_batch(self, X: np.ndarray) -> BatchExplanation:
        """A well-formed zero-sample batch for ``X`` of shape (0, d)."""
        d = X.shape[1]
        names = getattr(self, "feature_names", None)
        names = list(names) if names else [f"x{i}" for i in range(d)]
        if len(names) != d:
            raise ValueError(f"X has {d} features, expected {len(names)}")
        return BatchExplanation(
            feature_names=names,
            values=np.zeros((0, d)),
            base_values=np.zeros(0),
            predictions=np.zeros(0),
            X=X,
            method=self.method_name,
            sample_extras=[],
        )

    def _batch_from_matrix(
        self, X, values, base_values, predictions, *, extras=None
    ) -> BatchExplanation:
        """Assemble a :class:`BatchExplanation` from precomputed
        matrices — the common tail of every vectorized
        :meth:`explain_batch` override."""
        return BatchExplanation(
            feature_names=list(self.feature_names),
            values=values,
            base_values=base_values,
            predictions=predictions,
            X=X,
            method=self.method_name,
            extras=extras or {},
        )

    def explain_batch(self, X) -> BatchExplanation:
        """Explain each row of ``X``.

        The base implementation loops over :meth:`explain`; vectorized
        subclasses override it to share setup across rows.
        """
        X = self._check_batch(X)
        if X.shape[0] == 0:
            return self._empty_batch(X)
        return BatchExplanation.from_explanations(
            [self.explain(row) for row in X], method=self.method_name
        )

    def explain_batch_chunked(
        self, X, executor=None, *, chunk_rows: int | None = None
    ) -> BatchExplanation:
        """Explain ``X`` in row chunks dispatched to an ``executor``.

        Splits the rows into ``chunk_rows``-sized chunks (default
        :attr:`batch_dispatch_rows`), runs :meth:`explain_batch` on
        each through ``executor.map`` — any backend from
        :mod:`repro.core.executor` — and stitches the chunk results
        back together with :meth:`BatchExplanation.concat`.

        Chunk boundaries depend only on ``len(X)`` and ``chunk_rows``,
        never on the backend or worker count, and each chunk is a pure
        function of (explainer configuration, chunk rows): with an
        integer ``random_state`` the stochastic explainers re-derive
        the same shared design for every chunk, so serial, thread, and
        process backends return bit-identical batches.  With a live
        ``Generator`` seed, chunked results are *not* reproducible —
        pass integer seeds when you care (the pipeline and matrix
        runner always do).

        ``executor=None`` (or a single chunk) falls back to one plain
        :meth:`explain_batch` call.
        """
        X = self._check_batch(X)
        if chunk_rows is None:
            chunk_rows = self.batch_dispatch_rows
        if chunk_rows < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
        n = X.shape[0]
        if executor is None or n <= chunk_rows:
            return self.explain_batch(X)
        chunks = [X[start:start + chunk_rows] for start in range(0, n, chunk_rows)]
        return BatchExplanation.concat(executor.map(self.explain_batch, chunks))

    def global_importance(self, X) -> GlobalExplanation:
        """Mean |local attribution| over the rows of ``X`` — the standard
        SHAP-style global importance summary."""
        return self.explain_batch(X).global_importance()


class ModelOutputFn:
    """Picklable ``f(X) -> 1-D scores`` wrapper around a fitted model.

    Explainers hold onto these for their whole life, and the process
    execution backend ships them (inside explainers and pipelines) to
    worker processes — which is why this is a class rather than a
    closure: closures cannot be pickled, instances can, as long as the
    wrapped model can.

    Instances also expose :meth:`cache_token`, a content-style identity
    used by :mod:`repro.core.cache` as a fallback key when function
    *object* identity is unavailable (a fresh unpickled copy in a
    worker process is a new object wrapping the same model).
    """

    def __init__(self, model, output: str, class_index: int):
        self.model = model
        self.output = output
        self.class_index = int(class_index)

    def cache_token(self) -> str:
        """Stable identity across pickling: output mode, class index,
        and the model's constructor repr.  The repr covers parameters
        only (not fitted state), so two differently-fit models with the
        same parameters share a token — safe because every cache hit is
        spot-checked against live predictions (see
        :meth:`repro.core.cache.ExplainerCache.background_predictions`).
        """
        return f"{self.output}[{self.class_index}]:{self.model!r}"

    def __call__(self, X) -> np.ndarray:
        X = np.atleast_2d(X)
        if self.output == "proba":
            return self.model.predict_proba(X)[:, self.class_index]
        if self.output == "margin":
            margin = self.model.decision_function(X)
            if margin.ndim == 2:
                return margin[:, self.class_index]
            return margin
        return np.asarray(self.model.predict(X), dtype=float)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"ModelOutputFn({type(self.model).__name__}, "
            f"output={self.output!r}, class_index={self.class_index})"
        )


def model_output_fn(model, *, output: str = "auto", class_index: int = 1):
    """Wrap a fitted model into ``f(X) -> 1-D scores`` for explainers.

    The returned callable is a picklable :class:`ModelOutputFn`, so it
    survives the trip to process-backend workers.

    Parameters
    ----------
    output:
        ``"auto"`` — probability of ``class_index`` for classifiers,
        raw prediction for regressors;
        ``"proba"`` — ``predict_proba[:, class_index]``;
        ``"margin"`` — ``decision_function`` (column ``class_index`` if 2-D);
        ``"predict"`` — raw ``predict`` (must be numeric).
    class_index:
        Which column of the probability/margin matrix to explain.
    """
    if output not in ("auto", "proba", "margin", "predict"):
        raise ValueError(f"unknown output {output!r}")
    if output == "auto":
        output = "proba" if hasattr(model, "predict_proba") else "predict"
    if output == "proba" and not hasattr(model, "predict_proba"):
        raise ValueError(f"{type(model).__name__} has no predict_proba")
    if output == "margin" and not hasattr(model, "decision_function"):
        raise ValueError(f"{type(model).__name__} has no decision_function")
    return ModelOutputFn(model, output, class_index)
