"""Global surrogate trees.

Distill the black box into a shallow decision tree trained on the
model's *own outputs* (not the true labels).  The surrogate's fidelity
(how well it mimics the model) bounds how much its structure can be
trusted as a description of the model — reported alongside the tree.
"""

from __future__ import annotations

import numpy as np

from repro.core.explainers.base import GlobalExplanation
from repro.ml.metrics import r2_score
from repro.ml.tree import DecisionTreeRegressor

__all__ = ["SurrogateTreeExplainer"]


class SurrogateTreeExplainer:
    """Fit an interpretable tree that mimics ``predict_fn``.

    The surrogate is always a *regression* tree on the model's scores
    (probabilities or raw outputs) — regressing scores preserves more
    information than classifying hard labels.

    Parameters
    ----------
    predict_fn:
        ``f(X) -> 1-D scores`` of the model to distill.
    max_depth:
        Depth budget of the surrogate (interpretability knob).
    """

    method_name = "surrogate_tree"

    def __init__(self, predict_fn, *, max_depth: int = 4, min_samples_leaf: int = 5):
        self.predict_fn = predict_fn
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.tree_ = None
        self.fidelity_ = None
        self.feature_names_ = None

    def fit(self, X, feature_names=None) -> "SurrogateTreeExplainer":
        """Distill the model on dataset ``X``; stores fidelity (R² of the
        surrogate against the model's scores on ``X``)."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        d = X.shape[1]
        self.feature_names_ = (
            list(feature_names)
            if feature_names is not None
            else [f"x{i}" for i in range(d)]
        )
        if len(self.feature_names_) != d:
            raise ValueError(f"{len(self.feature_names_)} names for {d} features")
        scores = np.asarray(self.predict_fn(X), dtype=float)
        self.tree_ = DecisionTreeRegressor(
            max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf
        ).fit(X, scores)
        self.fidelity_ = r2_score(scores, self.tree_.predict(X))
        return self

    def fidelity(self, X) -> float:
        """R² of the surrogate against the model on held-out ``X``."""
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        return r2_score(
            np.asarray(self.predict_fn(X), dtype=float), self.tree_.predict(X)
        )

    def global_importance(self, X=None) -> GlobalExplanation:
        """The surrogate tree's impurity-based importances."""
        self._check_fitted()
        return GlobalExplanation(
            feature_names=self.feature_names_,
            importances=self.tree_.feature_importances_,
            method=self.method_name,
            extras={"fidelity_r2": self.fidelity_, "depth": self.tree_.get_depth()},
        )

    def rules(self) -> str:
        """Render the surrogate as indented if/else text rules."""
        self._check_fitted()
        tree = self.tree_.tree_
        lines: list[str] = []

        def walk(node: int, indent: int) -> None:
            pad = "  " * indent
            if tree.is_leaf(node):
                lines.append(f"{pad}predict {tree.value[node, 0]:.4f}")
                return
            name = self.feature_names_[tree.feature[node]]
            lines.append(f"{pad}if {name} <= {tree.threshold[node]:.4f}:")
            walk(tree.children_left[node], indent + 1)
            lines.append(f"{pad}else:  # {name} > {tree.threshold[node]:.4f}")
            walk(tree.children_right[node], indent + 1)

        walk(0, 0)
        return "\n".join(lines)

    def _check_fitted(self) -> None:
        if self.tree_ is None:
            raise RuntimeError("SurrogateTreeExplainer is not fitted; call fit()")
