"""Monte-Carlo permutation sampling of Shapley values.

The third canonical Shapley estimator (besides kernel regression and
tree traversal): draw random feature permutations and accumulate each
feature's marginal contribution when it joins the coalition of features
preceding it (Castro et al. 2009; `shap.SamplingExplainer`).

Compared to KernelSHAP it needs no linear solve and its estimates are
unbiased per-feature, but it converges slower per model evaluation —
the E8 bench quantifies this trade-off.
"""

from __future__ import annotations

import numpy as np

from repro.core.cache import background_predictions
from repro.core.explainers.base import BatchExplanation, Explainer, Explanation
from repro.utils.rng import check_random_state

__all__ = ["SamplingShapleyExplainer"]

#: Upper bound on rows per stacked model call when batching walks.
_ROW_BUDGET = 32768


class SamplingShapleyExplainer(Explainer):
    """Permutation-sampling Shapley attribution.

    Parameters
    ----------
    predict_fn:
        ``f(X) -> 1-D scores``.
    background:
        Background rows defining the "feature absent" distribution.
    n_permutations:
        Random permutations per explanation; each costs ``d + 1``
        coalition evaluations (``d * n_background`` model rows total).
    antithetic:
        Also walk each permutation in reverse order — pairs the
        marginal contributions and reduces variance at no extra model
        cost beyond the second walk.
    """

    method_name = "sampling_shapley"

    def __init__(
        self,
        predict_fn,
        background,
        feature_names=None,
        *,
        n_permutations: int = 64,
        antithetic: bool = True,
        random_state=None,
    ):
        if n_permutations < 1:
            raise ValueError(
                f"n_permutations must be >= 1, got {n_permutations}"
            )
        self.predict_fn = predict_fn
        self.background = np.asarray(background, dtype=float)
        if self.background.ndim != 2:
            raise ValueError(
                f"background must be 2-D, got shape {self.background.shape}"
            )
        d = self.background.shape[1]
        self.feature_names = (
            list(feature_names)
            if feature_names is not None
            else [f"x{i}" for i in range(d)]
        )
        if len(self.feature_names) != d:
            raise ValueError(f"{len(self.feature_names)} names for {d} features")
        self.n_permutations = int(n_permutations)
        self.antithetic = antithetic
        self.random_state = random_state
        self.expected_value_ = float(
            np.mean(background_predictions(predict_fn, self.background))
        )

    def _walk(self, x: np.ndarray, order: np.ndarray, phi: np.ndarray) -> None:
        """Add one permutation walk's marginal contributions to ``phi``.

        Builds the d+1 hybrid datasets incrementally (features switch
        from background values to x's values in ``order``) and evaluates
        them in a single batched model call.
        """
        n_bg, d = self.background.shape
        # stack of (d+1) * n_bg rows: step k has features order[:k] set to x
        steps = np.empty((d + 1, n_bg, d))
        current = self.background.copy()
        steps[0] = current
        for k, j in enumerate(order):
            current = current.copy()
            current[:, j] = x[j]
            steps[k + 1] = current
        values = np.asarray(
            self.predict_fn(steps.reshape(-1, d)), dtype=float
        ).reshape(d + 1, n_bg).mean(axis=1)
        phi[order] += np.diff(values)

    def explain(self, x) -> Explanation:
        x = np.asarray(x, dtype=float).ravel()
        d = self.background.shape[1]
        if len(x) != d:
            raise ValueError(f"x has {len(x)} features, expected {d}")
        rng = check_random_state(self.random_state)
        phi = np.zeros(d)
        n_walks = 0
        for _ in range(self.n_permutations):
            order = rng.permutation(d)
            self._walk(x, order, phi)
            n_walks += 1
            if self.antithetic:
                self._walk(x, order[::-1], phi)
                n_walks += 1
        phi /= n_walks
        prediction = float(self.predict_fn(x.reshape(1, -1))[0])
        return Explanation(
            feature_names=self.feature_names,
            values=phi,
            base_value=self.expected_value_,
            prediction=prediction,
            x=x,
            method=self.method_name,
            extras={"n_walks": n_walks},
        )

    # ------------------------------------------------------------------
    def _walk_batch(
        self, X: np.ndarray, order: np.ndarray, phi: np.ndarray
    ) -> None:
        """Add one permutation walk's contributions for every row of
        ``X`` to ``phi`` (shape ``(n, d)``), evaluating all rows' hybrid
        datasets in a single batched model call."""
        n, d = X.shape
        n_bg = len(self.background)
        steps = np.empty((d + 1, n, n_bg, d))
        current = np.broadcast_to(self.background, (n, n_bg, d)).copy()
        steps[0] = current
        for k, j in enumerate(order):
            current = current.copy()
            current[:, :, j] = X[:, j][:, None]
            steps[k + 1] = current
        values = np.asarray(
            self.predict_fn(steps.reshape(-1, d)), dtype=float
        ).reshape(d + 1, n, n_bg).mean(axis=2)
        phi[:, order] += np.diff(values, axis=0).T

    def explain_batch(self, X) -> BatchExplanation:
        """Vectorized permutation sampling over every row of ``X``.

        The random permutations are drawn once and shared by all rows
        (matching the per-sample RNG discipline for integer seeds), and
        each walk evaluates the hybrid datasets of every row in one
        stacked model call.  Rows are processed in blocks to bound the
        size of the stacked arrays.
        """
        X = self._check_batch(X, self.background.shape[1])
        if X.shape[0] == 0:
            return self._empty_batch(X)
        n, d = X.shape
        rng = check_random_state(self.random_state)
        orders = [rng.permutation(d) for _ in range(self.n_permutations)]

        n_bg = len(self.background)
        phi = np.zeros((n, d))
        block = max(1, _ROW_BUDGET // max(1, (d + 1) * n_bg))
        n_walks = (1 + int(self.antithetic)) * self.n_permutations
        for start in range(0, n, block):
            rows = X[start : start + block]
            view = phi[start : start + len(rows)]
            for order in orders:
                self._walk_batch(rows, order, view)
                if self.antithetic:
                    self._walk_batch(rows, order[::-1], view)
        phi /= n_walks
        predictions = np.asarray(self.predict_fn(X), dtype=float)
        return BatchExplanation(
            feature_names=self.feature_names,
            values=phi,
            base_values=np.full(n, self.expected_value_),
            predictions=predictions,
            X=X,
            method=self.method_name,
            extras={"n_walks": n_walks},
        )
