"""TreeSHAP: exact Shapley values for tree ensembles in polynomial time.

Implements the path-dependent algorithm of Lundberg, Erion & Lee
("Consistent Individualized Feature Attribution for Tree Ensembles",
2018, Algorithm 2).  The conditional expectation for a coalition S is
defined by the trees themselves: descending a node whose split feature
is *in* S follows the decision path, while a node whose feature is
*absent* averages both children weighted by training-sample coverage
(``n_node_samples``).  For that value function the algorithm computes
*exact* Shapley values in ``O(L * D^2)`` per tree instead of ``O(2^d)``
— the property the overhead experiment (E2) demonstrates.

Supported models: :class:`~repro.ml.tree.DecisionTreeRegressor` /
``Classifier``, :class:`~repro.ml.forest.RandomForestRegressor` /
``Classifier`` (attributions average over trees),
:class:`~repro.ml.boosting.GradientBoostingRegressor` / ``Classifier``
(attributions explain the additive margin, scaled by the learning
rate).
"""

from __future__ import annotations

import numpy as np

from repro.core.explainers.base import BatchExplanation, Explainer, Explanation
from repro.ml.boosting import GradientBoostingClassifier, GradientBoostingRegressor
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.packed_shap import packed_tree_shap
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor, TreeStructure

__all__ = ["TreeShapExplainer", "tree_expected_value", "tree_shap_values"]


def tree_expected_value(tree: TreeStructure, output: int = 0) -> float:
    """Coverage-weighted mean leaf value — the tree's base value."""
    total = tree.n_node_samples[0]
    expected = 0.0
    stack = [(0, 1.0)]
    while stack:
        node, weight = stack.pop()
        if tree.is_leaf(node):
            expected += weight * tree.value[node, output]
            continue
        left = tree.children_left[node]
        right = tree.children_right[node]
        n = tree.n_node_samples[node]
        stack.append((left, weight * tree.n_node_samples[left] / n))
        stack.append((right, weight * tree.n_node_samples[right] / n))
    return float(expected)


class _Path:
    """The decision-path bookkeeping of Algorithm 2.

    Parallel arrays over path elements: the feature that split,
    the fraction of "zero" (feature-absent) paths that flow through,
    the fraction of "one" (feature-present) paths, and the permutation
    weights ``pweights``.
    """

    __slots__ = ("features", "zeros", "ones", "pweights")

    def __init__(self):
        self.features: list[int] = []
        self.zeros: list[float] = []
        self.ones: list[float] = []
        self.pweights: list[float] = []

    def copy(self) -> "_Path":
        new = _Path()
        new.features = self.features.copy()
        new.zeros = self.zeros.copy()
        new.ones = self.ones.copy()
        new.pweights = self.pweights.copy()
        return new

    def __len__(self) -> int:
        return len(self.features)


def _extend(path: _Path, pz: float, po: float, pi: int) -> _Path:
    """Grow the path with a new feature split (returns a copy)."""
    m = path.copy()
    length = len(m)
    m.features.append(pi)
    m.zeros.append(pz)
    m.ones.append(po)
    m.pweights.append(1.0 if length == 0 else 0.0)
    for i in range(length - 1, -1, -1):
        m.pweights[i + 1] += po * m.pweights[i] * (i + 1) / (length + 1)
        m.pweights[i] = pz * m.pweights[i] * (length - i) / (length + 1)
    return m


def _unwind(path: _Path, index: int) -> _Path:
    """Undo the extension that added element ``index`` (returns a copy)."""
    m = path.copy()
    length = len(m)
    one = m.ones[index]
    zero = m.zeros[index]
    n = m.pweights[length - 1]
    for j in range(length - 2, -1, -1):
        if one != 0.0:
            t = m.pweights[j]
            m.pweights[j] = n * length / ((j + 1) * one)
            n = t - m.pweights[j] * zero * (length - 1 - j) / length
        else:
            m.pweights[j] = m.pweights[j] * length / (zero * (length - 1 - j))
    for j in range(index, length - 1):
        m.features[j] = m.features[j + 1]
        m.zeros[j] = m.zeros[j + 1]
        m.ones[j] = m.ones[j + 1]
    del m.features[-1], m.zeros[-1], m.ones[-1], m.pweights[-1]
    return m


def _unwound_sum(path: _Path, index: int) -> float:
    """Sum of permutation weights after (virtually) unwinding ``index``."""
    length = len(path)
    one = path.ones[index]
    zero = path.zeros[index]
    total = 0.0
    n = path.pweights[length - 1]
    for j in range(length - 2, -1, -1):
        if one != 0.0:
            t = n * length / ((j + 1) * one)
            total += t
            n = path.pweights[j] - t * zero * (length - 1 - j) / length
        else:
            total += path.pweights[j] * length / (zero * (length - 1 - j))
    return total


def tree_shap_values(
    tree: TreeStructure, x: np.ndarray, *, output: int = 0
) -> np.ndarray:
    """Path-dependent SHAP values of a single tree at instance ``x``."""
    x = np.asarray(x, dtype=float).ravel()
    phi = np.zeros(len(x))

    def recurse(node: int, path: _Path, pz: float, po: float, pi: int) -> None:
        path = _extend(path, pz, po, pi)
        if tree.is_leaf(node):
            leaf_value = tree.value[node, output]
            for i in range(1, len(path)):
                w = _unwound_sum(path, i)
                phi[path.features[i]] += (
                    w * (path.ones[i] - path.zeros[i]) * leaf_value
                )
            return
        feature = tree.feature[node]
        left = tree.children_left[node]
        right = tree.children_right[node]
        if x[feature] <= tree.threshold[node]:
            hot, cold = left, right
        else:
            hot, cold = right, left
        incoming_zero = 1.0
        incoming_one = 1.0
        # if this feature already split higher on the path, merge with it
        previous = None
        for k in range(1, len(path)):
            if path.features[k] == feature:
                previous = k
                break
        if previous is not None:
            incoming_zero = path.zeros[previous]
            incoming_one = path.ones[previous]
            path = _unwind(path, previous)
        n = tree.n_node_samples[node]
        recurse(
            hot,
            path,
            incoming_zero * tree.n_node_samples[hot] / n,
            incoming_one,
            feature,
        )
        recurse(
            cold,
            path,
            incoming_zero * tree.n_node_samples[cold] / n,
            0.0,
            feature,
        )

    recurse(0, _Path(), 1.0, 1.0, -1)
    return phi


class TreeShapExplainer(Explainer):
    """SHAP values for this library's tree-based models.

    Parameters
    ----------
    model:
        A fitted tree, random forest, or gradient-boosting model.
    feature_names:
        Optional column names.
    class_index:
        For classifiers: which class's probability (trees/forests) or
        margin (boosting) to explain.

    Notes
    -----
    For :class:`GradientBoostingClassifier` the explained output is the
    *log-odds margin* (the additive quantity); ``prediction`` in the
    returned :class:`Explanation` is therefore the margin, not the
    probability.
    """

    method_name = "tree_shap"

    def __init__(self, model, feature_names=None, *, class_index: int = 1):
        self._components = self._decompose(model, class_index)
        self.model = model
        self.class_index = class_index
        d = model.n_features_in_
        self.feature_names = (
            list(feature_names)
            if feature_names is not None
            else [f"x{i}" for i in range(d)]
        )
        if len(self.feature_names) != d:
            raise ValueError(f"{len(self.feature_names)} names for {d} features")
        self.expected_value_ = self._expected_value(model)

    def _expected_value(self, model) -> float:
        """The ensemble's base value (coverage-weighted mean output).

        Models wired to the packed inference engine expose their flat
        node arrays, so the background summary is one vectorized level
        walk over all trees (:meth:`PackedEnsemble.expected_value`)
        instead of a Python stack per tree — the construction-time
        cost that streaming refits re-pay every window.  Models
        without a packed form fall back to the per-tree
        :func:`tree_expected_value` sum.
        """
        packed_fn = getattr(model, "packed_ensemble", None)
        if callable(packed_fn):
            packed = packed_fn()
            column = self.class_index if packed.outputs_are_classes else 0
            if 0 <= column < packed.n_outputs:
                return float(packed.expected_value()[column])
            # no tree ever saw this class: every component was skipped
            return self._base_offset
        return self._base_offset + sum(
            weight * tree_expected_value(tree, output)
            for tree, weight, output in self._components
        )

    # ------------------------------------------------------------------
    def _decompose(self, model, class_index):
        """Flatten any supported model into ``(tree, weight, output)``
        triples whose weighted sum reproduces the explained output."""
        self._base_offset = 0.0
        if isinstance(model, (DecisionTreeRegressor,)):
            return [(model.tree_, 1.0, 0)]
        if isinstance(model, DecisionTreeClassifier):
            # a standalone tree's value columns are indexed by class code,
            # i.e. by predict_proba column — class_index maps directly
            if not 0 <= class_index < len(model.classes_):
                raise ValueError(
                    f"class_index {class_index} out of range for "
                    f"{len(model.classes_)} classes"
                )
            return [(model.tree_, 1.0, class_index)]
        if isinstance(model, RandomForestRegressor):
            w = 1.0 / len(model.estimators_)
            return [(t.tree_, w, 0) for t in model.estimators_]
        if isinstance(model, RandomForestClassifier):
            w = 1.0 / len(model.estimators_)
            components = []
            for t in model.estimators_:
                output = self._tree_output_column(t, class_index, required=False)
                if output is None:
                    # this bootstrap never saw the class: constant 0
                    # probability, which contributes nothing
                    continue
                components.append((t.tree_, w, output))
            return components
        if isinstance(
            model, (GradientBoostingRegressor, GradientBoostingClassifier)
        ):
            self._base_offset = model.init_prediction_
            return [
                (t.tree_, model.learning_rate, 0) for t in model.estimators_
            ]
        raise TypeError(
            "TreeShapExplainer supports this library's decision trees, "
            f"random forests and gradient boosting; got {type(model).__name__}"
        )

    @staticmethod
    def _tree_output_column(tree_model, class_index, *, required: bool = True):
        """Column of ``tree_.value`` matching the requested class code."""
        matches = np.flatnonzero(tree_model.classes_ == class_index)
        if len(matches) == 0:
            if required:
                raise ValueError(
                    f"class index {class_index} not in {tree_model.classes_}"
                )
            return None
        return int(matches[0])

    def _packed_column(self):
        """``(packed, column)`` when the vectorized kernel applies,
        ``(None, None)`` otherwise (unpacked model, or a class column
        no tree in the packed ensemble carries — the legacy loop then
        reproduces the skip-every-component zeros)."""
        packed_fn = getattr(self.model, "packed_ensemble", None)
        if not callable(packed_fn):
            return None, None
        packed = packed_fn()
        column = self.class_index if packed.outputs_are_classes else 0
        if not 0 <= column < packed.n_outputs:
            return None, None
        return packed, column

    # ------------------------------------------------------------------
    def explain(self, x) -> Explanation:
        """Attributions for one instance.

        Routed through :meth:`explain_batch` as a 1-row batch, so the
        single-row path exercises the same vectorized kernel as fleet
        triage (one code path to trust, and the packed snapshot is
        shared across calls).  Models without a packed form — or a
        class column no tree carries — fall back to the per-tree
        recursion (:meth:`_explain_recursion`).
        """
        x = np.asarray(x, dtype=float).ravel()
        d = len(self.feature_names)
        if len(x) != d:
            raise ValueError(f"x has {len(x)} features, expected {d}")
        packed, _ = self._packed_column()
        if packed is None:
            return self._explain_recursion(x)
        return self.explain_batch(x[np.newaxis, :])[0]

    def _explain_recursion(self, x) -> Explanation:
        """Per-tree recursive TreeSHAP (:func:`tree_shap_values`) — the
        reference implementation the packed kernel must reproduce, and
        the fallback for models without a packed form."""
        x = np.asarray(x, dtype=float).ravel()
        d = len(self.feature_names)
        if len(x) != d:
            raise ValueError(f"x has {len(x)} features, expected {d}")
        phi = np.zeros(d)
        for tree, weight, output in self._components:
            phi += weight * tree_shap_values(tree, x, output=output)
        prediction = self.expected_value_ + float(phi.sum())
        return Explanation(
            feature_names=self.feature_names,
            values=phi,
            base_value=self.expected_value_,
            prediction=prediction,
            x=x,
            method=self.method_name,
            extras={"n_trees": len(self._components)},
        )

    def explain_batch(self, X) -> BatchExplanation:
        """Vectorized path-dependent TreeSHAP over all rows at once.

        Runs :func:`repro.ml.packed_shap.packed_tree_shap` on the
        model's packed node block — one polynomial sweep over every
        (row, leaf) state instead of a Python recursion per (row,
        tree).  Results match the per-row loop to <= 1e-10; models
        without a packed form fall back to that loop.
        """
        X = self._check_batch(X, expected_d=len(self.feature_names))
        if X.shape[0] == 0:
            return self._empty_batch(X)
        packed, column = self._packed_column()
        if packed is None:
            return super().explain_batch(X)
        phi = packed_tree_shap(packed, X, column=column)
        return self._batch_from_matrix(
            X,
            phi,
            np.full(len(X), self.expected_value_),
            self.expected_value_ + phi.sum(axis=1),
            extras={"n_trees": len(self._components), "vectorized": True},
        )
