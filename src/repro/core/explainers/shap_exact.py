"""Exact Shapley values by subset enumeration.

Exponential in the number of features (guarded at 15), so this is the
*reference implementation*: KernelSHAP and TreeSHAP are validated
against it in the test suite, and the E8 ablation measures KernelSHAP's
convergence toward it.

The value function is the standard interventional expectation
``v(S) = E_b[f(x_S, b_{\\bar S})]`` over a background dataset: features
in the coalition keep their values from ``x``, the rest are filled from
background rows.
"""

from __future__ import annotations

from itertools import combinations
from math import comb

import numpy as np

from repro.core.explainers.base import Explainer, Explanation

__all__ = ["ExactShapleyExplainer", "coalition_value"]

MAX_EXACT_FEATURES = 15


def coalition_value(
    predict_fn, x: np.ndarray, background: np.ndarray, subset
) -> float:
    """Interventional value ``v(S)`` of coalition ``subset`` at ``x``."""
    data = background.copy()
    subset = list(subset)
    if subset:
        data[:, subset] = x[subset]
    return float(np.mean(predict_fn(data)))


class ExactShapleyExplainer(Explainer):
    """Brute-force Shapley attribution.

    Parameters
    ----------
    predict_fn:
        ``f(X) -> 1-D scores`` (see
        :func:`~repro.core.explainers.base.model_output_fn`).
    background:
        Background rows defining the "feature absent" distribution.
    feature_names:
        Optional column names (defaults to ``x0..``).
    """

    method_name = "exact_shapley"

    def __init__(self, predict_fn, background, feature_names=None):
        self.predict_fn = predict_fn
        self.background = np.asarray(background, dtype=float)
        if self.background.ndim != 2:
            raise ValueError(
                f"background must be 2-D, got shape {self.background.shape}"
            )
        d = self.background.shape[1]
        if d > MAX_EXACT_FEATURES:
            raise ValueError(
                f"exact Shapley enumerates 2^d subsets; d={d} exceeds the "
                f"limit of {MAX_EXACT_FEATURES} — use KernelShapExplainer"
            )
        self.feature_names = (
            list(feature_names)
            if feature_names is not None
            else [f"x{i}" for i in range(d)]
        )
        if len(self.feature_names) != d:
            raise ValueError(
                f"{len(self.feature_names)} names for {d} features"
            )
        self.expected_value_ = coalition_value(
            predict_fn, np.zeros(d), self.background, []
        )

    def explain(self, x) -> Explanation:
        """Exact Shapley values of every feature at ``x``."""
        x = np.asarray(x, dtype=float).ravel()
        d = self.background.shape[1]
        if len(x) != d:
            raise ValueError(f"x has {len(x)} features, expected {d}")
        # cache v(S) for every subset, keyed by frozenset
        values: dict[frozenset, float] = {}
        features = range(d)
        for size in range(d + 1):
            for subset in combinations(features, size):
                values[frozenset(subset)] = coalition_value(
                    self.predict_fn, x, self.background, subset
                )
        phi = np.zeros(d)
        for i in features:
            others = [j for j in features if j != i]
            for size in range(d):
                weight = 1.0 / (d * comb(d - 1, size))
                for subset in combinations(others, size):
                    s = frozenset(subset)
                    phi[i] += weight * (values[s | {i}] - values[s])
        prediction = float(self.predict_fn(x.reshape(1, -1))[0])
        return Explanation(
            feature_names=self.feature_names,
            values=phi,
            base_value=values[frozenset()],
            prediction=prediction,
            x=x,
            method=self.method_name,
            extras={"n_subsets": len(values)},
        )
