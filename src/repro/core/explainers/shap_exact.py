"""Exact Shapley values by subset enumeration.

Exponential in the number of features (guarded at 15), so this is the
*reference implementation*: KernelSHAP and TreeSHAP are validated
against it in the test suite, and the E8 ablation measures KernelSHAP's
convergence toward it.

The value function is the standard interventional expectation
``v(S) = E_b[f(x_S, b_{\\bar S})]`` over a background dataset: features
in the coalition keep their values from ``x``, the rest are filled from
background rows.
"""

from __future__ import annotations

from itertools import combinations
from math import comb

import numpy as np

from repro.core.cache import background_predictions
from repro.core.explainers.base import BatchExplanation, Explainer, Explanation

__all__ = ["ExactShapleyExplainer", "coalition_value"]

MAX_EXACT_FEATURES = 15

#: Upper bound on rows per stacked model call when batching subsets.
_ROW_BUDGET = 8192


def coalition_value(
    predict_fn, x: np.ndarray, background: np.ndarray, subset
) -> float:
    """Interventional value ``v(S)`` of coalition ``subset`` at ``x``."""
    data = background.copy()
    subset = list(subset)
    if subset:
        data[:, subset] = x[subset]
    return float(np.mean(predict_fn(data)))


class ExactShapleyExplainer(Explainer):
    """Brute-force Shapley attribution.

    Parameters
    ----------
    predict_fn:
        ``f(X) -> 1-D scores`` (see
        :func:`~repro.core.explainers.base.model_output_fn`).
    background:
        Background rows defining the "feature absent" distribution.
    feature_names:
        Optional column names (defaults to ``x0..``).
    """

    method_name = "exact_shapley"

    def __init__(self, predict_fn, background, feature_names=None):
        self.predict_fn = predict_fn
        self.background = np.asarray(background, dtype=float)
        if self.background.ndim != 2:
            raise ValueError(
                f"background must be 2-D, got shape {self.background.shape}"
            )
        d = self.background.shape[1]
        if d > MAX_EXACT_FEATURES:
            raise ValueError(
                f"exact Shapley enumerates 2^d subsets; d={d} exceeds the "
                f"limit of {MAX_EXACT_FEATURES} — use KernelShapExplainer"
            )
        self.feature_names = (
            list(feature_names)
            if feature_names is not None
            else [f"x{i}" for i in range(d)]
        )
        if len(self.feature_names) != d:
            raise ValueError(
                f"{len(self.feature_names)} names for {d} features"
            )
        self.expected_value_ = float(
            np.mean(background_predictions(predict_fn, self.background))
        )

    def explain(self, x) -> Explanation:
        """Exact Shapley values of every feature at ``x``."""
        x = np.asarray(x, dtype=float).ravel()
        d = self.background.shape[1]
        if len(x) != d:
            raise ValueError(f"x has {len(x)} features, expected {d}")
        # cache v(S) for every subset, keyed by frozenset
        values: dict[frozenset, float] = {}
        features = range(d)
        for size in range(d + 1):
            for subset in combinations(features, size):
                values[frozenset(subset)] = coalition_value(
                    self.predict_fn, x, self.background, subset
                )
        phi = np.zeros(d)
        for i in features:
            others = [j for j in features if j != i]
            for size in range(d):
                weight = 1.0 / (d * comb(d - 1, size))
                for subset in combinations(others, size):
                    s = frozenset(subset)
                    phi[i] += weight * (values[s | {i}] - values[s])
        prediction = float(self.predict_fn(x.reshape(1, -1))[0])
        return Explanation(
            feature_names=self.feature_names,
            values=phi,
            base_value=values[frozenset()],
            prediction=prediction,
            x=x,
            method=self.method_name,
            extras={"n_subsets": len(values)},
        )

    def explain_batch(self, X) -> BatchExplanation:
        """Exact Shapley values for every row of ``X`` at once.

        The ``2^d`` coalition values of *all* rows are computed by
        stacking each subset's background hybrids for every row into
        large model calls, so the subset enumeration and the Shapley
        weight accumulation are paid once per batch instead of once per
        sample.
        """
        X = self._check_batch(X, self.background.shape[1])
        if X.shape[0] == 0:
            return self._empty_batch(X)
        n, d = X.shape
        n_bg = len(self.background)
        # a huge fleet alone can exceed the row budget: chunk the rows
        # first, then the subsets within each row chunk
        max_rows = max(1, _ROW_BUDGET // n_bg)
        phi = np.zeros((n, d))
        base_values = np.empty(n)
        for start in range(0, n, max_rows):
            rows = X[start : start + max_rows]
            chunk_phi, chunk_base = self._batch_shapley(rows)
            phi[start : start + len(rows)] = chunk_phi
            base_values[start : start + len(rows)] = chunk_base
        predictions = np.asarray(self.predict_fn(X), dtype=float)
        return BatchExplanation(
            feature_names=self.feature_names,
            values=phi,
            base_values=base_values,
            predictions=predictions,
            X=X,
            method=self.method_name,
            extras={"n_subsets": 2**d},
        )

    def _batch_shapley(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Shapley values and base values for one row chunk."""
        n, d = X.shape
        n_bg = len(self.background)
        subsets = [
            subset
            for size in range(d + 1)
            for subset in combinations(range(d), size)
        ]
        # v(S) per subset for all rows, stacked into blocked model calls
        values: dict[frozenset, np.ndarray] = {}
        block = max(1, _ROW_BUDGET // max(1, n * n_bg))
        for start in range(0, len(subsets), block):
            chunk = subsets[start : start + block]
            masks = np.zeros((len(chunk), d), dtype=bool)
            for j, subset in enumerate(chunk):
                masks[j, list(subset)] = True
            # hybrid(j, i, r) = x_i where mask_j, background_r elsewhere
            tiled = np.where(
                masks[:, None, None, :],
                X[None, :, None, :],
                self.background[None, None, :, :],
            )
            preds = np.asarray(
                self.predict_fn(tiled.reshape(-1, d)), dtype=float
            ).reshape(len(chunk), n, n_bg)
            for j, subset in enumerate(chunk):
                values[frozenset(subset)] = preds[j].mean(axis=1)

        phi = np.zeros((n, d))
        features = range(d)
        for i in features:
            others = [j for j in features if j != i]
            for size in range(d):
                weight = 1.0 / (d * comb(d - 1, size))
                for subset in combinations(others, size):
                    s = frozenset(subset)
                    phi[:, i] += weight * (values[s | {i}] - values[s])
        return phi, values[frozenset()].copy()
