"""Permutation feature importance (global, model-agnostic).

Shuffle one column at a time and measure how much a score degrades —
the classic Breiman/Fisher-Rudin-Dominici measure.  Used as the cheap
global baseline against SHAP-derived global importances (E3) and as a
ranking source in the root-cause experiment (E6).
"""

from __future__ import annotations

import numpy as np

from repro.core.explainers.base import GlobalExplanation
from repro.utils.rng import check_random_state, spawn_rngs

__all__ = ["PermutationImportance"]


class PermutationImportance:
    """Global importance by column shuffling.

    Parameters
    ----------
    predict_fn:
        ``f(X) -> 1-D scores``.
    scoring:
        ``g(y_true, scores) -> float`` where *larger is better*
        (accuracy, R², negative MSE, ...).
    n_repeats:
        Shuffles per feature; importances report the mean drop.
    """

    method_name = "permutation"

    def __init__(self, predict_fn, scoring, *, n_repeats: int = 5, random_state=None):
        if n_repeats < 1:
            raise ValueError(f"n_repeats must be >= 1, got {n_repeats}")
        self.predict_fn = predict_fn
        self.scoring = scoring
        self.n_repeats = n_repeats
        self.random_state = random_state

    def global_importance(self, X, y, feature_names=None) -> GlobalExplanation:
        """Mean score drop (over repeats) when each feature is shuffled."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if len(X) != len(y):
            raise ValueError("X and y must have the same length")
        d = X.shape[1]
        names = (
            list(feature_names)
            if feature_names is not None
            else [f"x{i}" for i in range(d)]
        )
        if len(names) != d:
            raise ValueError(f"{len(names)} names for {d} features")

        baseline = float(self.scoring(y, self.predict_fn(X)))
        rngs = spawn_rngs(check_random_state(self.random_state), d)
        drops = np.zeros((d, self.n_repeats))
        for j, rng in enumerate(rngs):
            # stack all repeats of this feature's shuffle into one model
            # call; only column j differs between the stacked copies
            stacked = np.broadcast_to(X, (self.n_repeats, *X.shape)).copy()
            for r in range(self.n_repeats):
                stacked[r, :, j] = rng.permutation(stacked[r, :, j])
            preds = np.asarray(
                self.predict_fn(stacked.reshape(-1, X.shape[1])), dtype=float
            ).reshape(self.n_repeats, len(X))
            for r in range(self.n_repeats):
                drops[j, r] = baseline - float(self.scoring(y, preds[r]))
        return GlobalExplanation(
            feature_names=names,
            importances=drops.mean(axis=1),
            method=self.method_name,
            extras={
                "baseline_score": baseline,
                "importances_std": drops.std(axis=1),
                "n_repeats": self.n_repeats,
            },
        )
