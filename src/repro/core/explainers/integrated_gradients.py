"""Integrated Gradients for the MLP models (Sundararajan et al. 2017).

The gradient-based member of the explainer family: attribute by
integrating the model's analytic input gradient along the straight
path from a baseline to the instance,

    phi_i = (x_i - b_i) * mean_k  dF/dx_i (b + alpha_k (x - b)).

Satisfies completeness (= Shapley efficiency against the baseline
output) in the limit of many steps; the midpoint rule used here
converges fast for smooth MLPs.  Only works for models that expose
``input_gradients`` (:class:`~repro.ml.mlp.MLPClassifier` /
:class:`~repro.ml.mlp.MLPRegressor`).
"""

from __future__ import annotations

import numpy as np

from repro.core.explainers.base import Explainer, Explanation

__all__ = ["IntegratedGradientsExplainer"]


class IntegratedGradientsExplainer(Explainer):
    """Path-integrated gradient attribution for MLPs.

    Parameters
    ----------
    model:
        A fitted MLP exposing ``input_gradients(X, output_index)``.
    background:
        Rows whose mean is the integration baseline (or pass
        ``baseline`` explicitly).
    n_steps:
        Riemann-midpoint steps along the path; more steps shrink the
        completeness gap.
    class_index:
        For classifiers: which logit to explain.  The ``prediction``
        field of the returned explanation is that logit.
    """

    method_name = "integrated_gradients"

    def __init__(
        self,
        model,
        background=None,
        feature_names=None,
        *,
        baseline=None,
        n_steps: int = 64,
        class_index: int = 1,
    ):
        if not hasattr(model, "input_gradients"):
            raise TypeError(
                "IntegratedGradientsExplainer needs a model with "
                f"input_gradients(); got {type(model).__name__}"
            )
        if n_steps < 1:
            raise ValueError(f"n_steps must be >= 1, got {n_steps}")
        if (background is None) == (baseline is None):
            raise ValueError("pass exactly one of background or baseline")
        if baseline is None:
            background = np.asarray(background, dtype=float)
            if background.ndim != 2:
                raise ValueError(
                    f"background must be 2-D, got shape {background.shape}"
                )
            baseline = background.mean(axis=0)
        self.baseline = np.asarray(baseline, dtype=float).ravel()
        d = model.n_features_in_
        if len(self.baseline) != d:
            raise ValueError(
                f"baseline has {len(self.baseline)} features, model expects {d}"
            )
        self.model = model
        self.n_steps = int(n_steps)
        # regressors have a single output column; classifiers one per class
        self.output_index = (
            class_index if getattr(model, "classes_", None) is not None else 0
        )
        out_dim = model.weights_[-1].shape[1]
        if not 0 <= self.output_index < out_dim:
            raise ValueError(
                f"class_index {class_index} out of range for {out_dim} outputs"
            )
        self.feature_names = (
            list(feature_names)
            if feature_names is not None
            else [f"x{i}" for i in range(d)]
        )
        if len(self.feature_names) != d:
            raise ValueError(f"{len(self.feature_names)} names for {d} features")
        self.expected_value_ = self._raw_output(self.baseline.reshape(1, -1))[0]

    def _raw_output(self, X: np.ndarray) -> np.ndarray:
        """The explained scalar: logit column for classifiers, the
        prediction for regressors."""
        _, activations = self.model._forward(np.asarray(X, dtype=float))
        return activations[-1][:, self.output_index]

    def explain(self, x) -> Explanation:
        x = np.asarray(x, dtype=float).ravel()
        d = len(self.baseline)
        if len(x) != d:
            raise ValueError(f"x has {len(x)} features, expected {d}")
        # midpoint rule on the straight path baseline -> x
        alphas = (np.arange(self.n_steps) + 0.5) / self.n_steps
        points = self.baseline[None, :] + alphas[:, None] * (x - self.baseline)
        grads = self.model.input_gradients(points, self.output_index)
        phi = (x - self.baseline) * grads.mean(axis=0)
        prediction = float(self._raw_output(x.reshape(1, -1))[0])
        return Explanation(
            feature_names=self.feature_names,
            values=phi,
            base_value=float(self.expected_value_),
            prediction=prediction,
            x=x,
            method=self.method_name,
            extras={"n_steps": self.n_steps},
        )
