"""Interventional (background-data) TreeSHAP.

The path-dependent variant in :mod:`repro.core.explainers.shap_tree`
defines "feature absent" via training-coverage averaging inside the
tree; the *interventional* variant defines it against an explicit
background dataset — the same value function KernelSHAP and exact
enumeration use, so the three agree (DESIGN.md ablation #1 measures how
far path-dependent drifts from it).

Algorithm: for each background row ``z``, Shapley values of the
single-reference game ``v(S) = tree(hybrid of x_S, z_{not S})`` are
computed exactly in one traversal (Lundberg et al. 2020, "Independent
TreeSHAP"): descend the tree; where x and z route the same way just
follow; where they diverge, branch into an "x took it" path and a
"z took it" path.  A leaf reached with ``a`` x-features and ``b``
z-features on its divergence list contributes

    +W(a-1, b) * leaf_value   to every x-feature on the path,
    -W(a, b-1) * leaf_value   to every z-feature on the path,

with ``W(a, b) = a! b! / (a + b + 1)!``.  Averaging over the background
rows yields interventional SHAP values.  Cost is O(leaves) per
(instance, reference) pair per tree.
"""

from __future__ import annotations

import numpy as np

from repro.core.explainers.base import BatchExplanation, Explainer, Explanation
from repro.core.explainers.shap_tree import TreeShapExplainer
from repro.ml.packed_shap import (
    interventional_weight_table,
    packed_interventional_shap,
)

__all__ = ["InterventionalTreeShapExplainer", "tree_shap_interventional"]

# precomputed W(a, b) table, grown on demand — float throughout
# (lgamma-based), so deep paths never build huge-int factorials; the
# same table feeds the vectorized kernel in repro.ml.packed_shap
_W_TABLE = interventional_weight_table(32)


def _weight(a: int, b: int) -> float:
    """``W(a, b) = a! b! / (a + b + 1)!`` — Shapley ordering weight."""
    global _W_TABLE
    if max(a, b) >= _W_TABLE.shape[0]:
        _W_TABLE = interventional_weight_table(2 * max(a, b))
    return float(_W_TABLE[a, b])


def _single_reference_shap(
    tree, x: np.ndarray, z: np.ndarray, phi: np.ndarray, output: int
) -> None:
    """Accumulate SHAP values of the game ``v(S) = tree(x_S, z_!S)``."""

    # assignment[feature] is 'x' or 'z' once the paths diverged on it
    def recurse(node: int, assignment: dict[int, str]) -> None:
        if tree.is_leaf(node):
            value = tree.value[node, output]
            a = sum(1 for side in assignment.values() if side == "x")
            b = len(assignment) - a
            if a > 0:
                w_x = _weight(a - 1, b) * value
            if b > 0:
                w_z = _weight(a, b - 1) * value
            for feature, side in assignment.items():
                if side == "x":
                    phi[feature] += w_x
                else:
                    phi[feature] -= w_z
            return
        feature = tree.feature[node]
        threshold = tree.threshold[node]
        x_child = (
            tree.children_left[node]
            if x[feature] <= threshold
            else tree.children_right[node]
        )
        z_child = (
            tree.children_left[node]
            if z[feature] <= threshold
            else tree.children_right[node]
        )
        if x_child == z_child:
            recurse(x_child, assignment)
            return
        side = assignment.get(feature)
        if side == "x":
            recurse(x_child, assignment)
        elif side == "z":
            recurse(z_child, assignment)
        else:
            recurse(x_child, {**assignment, feature: "x"})
            recurse(z_child, {**assignment, feature: "z"})

    recurse(0, {})


def tree_shap_interventional(
    tree, x: np.ndarray, background: np.ndarray, *, output: int = 0
) -> np.ndarray:
    """Interventional SHAP values of one tree against ``background``."""
    x = np.asarray(x, dtype=float).ravel()
    background = np.asarray(background, dtype=float)
    phi = np.zeros(len(x))
    for z in background:
        _single_reference_shap(tree, x, z, phi, output)
    return phi / len(background)


class InterventionalTreeShapExplainer(Explainer):
    """Background-data TreeSHAP for this library's tree models.

    Shares model decomposition with :class:`TreeShapExplainer` (same
    supported model set, same output conventions) but computes the
    interventional value function against ``background``, so its
    results are directly comparable to KernelSHAP / exact enumeration.

    Parameters
    ----------
    model:
        Fitted tree / random forest / gradient boosting model.
    background:
        Reference rows (keep to tens of rows: cost scales linearly).
    """

    method_name = "interventional_tree_shap"

    def __init__(self, model, background, feature_names=None, *, class_index: int = 1):
        background = np.asarray(background, dtype=float)
        if background.ndim != 2:
            raise ValueError(
                f"background must be 2-D, got shape {background.shape}"
            )
        if background.shape[1] != model.n_features_in_:
            raise ValueError(
                f"background has {background.shape[1]} features, model "
                f"expects {model.n_features_in_}"
            )
        # reuse the ensemble decomposition logic from the path-dependent
        # explainer (same weights, offsets, and output-column handling)
        self._delegate = TreeShapExplainer(
            model, feature_names, class_index=class_index
        )
        self.background = background
        self.model = model
        self.feature_names = self._delegate.feature_names
        base = self._delegate._base_offset
        for tree, weight, output in self._delegate._components:
            values = np.array(
                [
                    self._leaf_value_at(tree, z, output)
                    for z in background
                ]
            )
            base += weight * float(values.mean())
        self.expected_value_ = base

    @staticmethod
    def _leaf_value_at(tree, z: np.ndarray, output: int) -> float:
        node = 0
        while not tree.is_leaf(node):
            if z[tree.feature[node]] <= tree.threshold[node]:
                node = tree.children_left[node]
            else:
                node = tree.children_right[node]
        return float(tree.value[node, output])

    def explain(self, x) -> Explanation:
        """Attributions for one instance.

        Routed through :meth:`explain_batch` as a 1-row batch, so the
        single-row path exercises the same vectorized kernel as batch
        attribution (one code path to trust, and the packed snapshot is
        shared across calls).  Models without a packed form fall back
        to the per-(tree, background) recursion
        (:meth:`_explain_recursion`).
        """
        x = np.asarray(x, dtype=float).ravel()
        d = len(self.feature_names)
        if len(x) != d:
            raise ValueError(f"x has {len(x)} features, expected {d}")
        packed, _ = self._delegate._packed_column()
        if packed is None:
            return self._explain_recursion(x)
        return self.explain_batch(x[np.newaxis, :])[0]

    def _explain_recursion(self, x) -> Explanation:
        """Per-(tree, background-row) recursive interventional SHAP
        (:func:`tree_shap_interventional`) — the reference the packed
        kernel must reproduce, and the fallback for unpacked models."""
        x = np.asarray(x, dtype=float).ravel()
        d = len(self.feature_names)
        if len(x) != d:
            raise ValueError(f"x has {len(x)} features, expected {d}")
        phi = np.zeros(d)
        for tree, weight, output in self._delegate._components:
            phi += weight * tree_shap_interventional(
                tree, x, self.background, output=output
            )
        prediction = self.expected_value_ + float(phi.sum())
        return Explanation(
            feature_names=self.feature_names,
            values=phi,
            base_value=self.expected_value_,
            prediction=prediction,
            x=x,
            method=self.method_name,
            extras={"n_background": len(self.background)},
        )

    def explain_batch(self, X) -> BatchExplanation:
        """Vectorized interventional TreeSHAP over all rows at once.

        Runs :func:`repro.ml.packed_shap.packed_interventional_shap`
        on the model's packed node block — batched per-leaf game
        contractions over every (row, background, tree) triple instead
        of a Python recursion per pair.  Results match the per-row
        loop to <= 1e-10; models without a packed form fall back to
        that loop.
        """
        X = self._check_batch(X, expected_d=len(self.feature_names))
        if X.shape[0] == 0:
            return self._empty_batch(X)
        packed, column = self._delegate._packed_column()
        if packed is None:
            return super().explain_batch(X)
        phi = packed_interventional_shap(
            packed, X, self.background, column=column
        )
        return self._batch_from_matrix(
            X,
            phi,
            np.full(len(X), self.expected_value_),
            self.expected_value_ + phi.sum(axis=1),
            extras={
                "n_background": len(self.background),
                "vectorized": True,
            },
        )
