"""Counterfactual explanations by greedy coordinate search.

"What is the smallest telemetry change that flips the predicted
outcome?" — for an NFV operator this reads as an *actionable* repair
hint (e.g. "violation clears if dpi cpu_util drops below 0.71").

The search greedily moves one feature at a time to candidate values
drawn from the data distribution (percentile grid), optimizing the
model score toward the target with an L1 sparsity penalty in
standardized units.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Counterfactual", "CounterfactualExplainer"]


@dataclass
class Counterfactual:
    """A found counterfactual.

    Attributes
    ----------
    x_original, x_counterfactual:
        The instance and its modified version.
    changed:
        ``(feature_name, old_value, new_value)`` for each change.
    prediction_original, prediction_counterfactual:
        Model scores before/after.
    success:
        Whether the target condition was reached.
    distance:
        L1 distance in standardized units (sparser + smaller = better).
    """

    x_original: np.ndarray
    x_counterfactual: np.ndarray
    changed: list[tuple[str, float, float]]
    prediction_original: float
    prediction_counterfactual: float
    success: bool
    distance: float

    def summary(self) -> str:
        """Operator-facing one-liner per change."""
        if not self.changed:
            return "no change needed"
        status = "flips outcome" if self.success else "best effort (no flip)"
        parts = [
            f"{name}: {old:.3f} -> {new:.3f}" for name, old, new in self.changed
        ]
        return f"{status}: " + "; ".join(parts)


class CounterfactualExplainer:
    """Greedy sparse counterfactual search.

    Parameters
    ----------
    predict_fn:
        ``f(X) -> 1-D scores`` (e.g. violation probability).
    data:
        Reference data; supplies candidate values (percentiles) and
        standardization.
    threshold:
        Decision threshold on the score.
    target:
        ``"below"`` — push the score under the threshold (clear a
        predicted violation); ``"above"`` — push it over.
    max_changes:
        Sparsity budget: at most this many features may move.
    mutable_features:
        Optional subset of feature names the search may touch (an
        operator cannot change ``tod_sin``).
    """

    method_name = "counterfactual"

    def __init__(
        self,
        predict_fn,
        data,
        feature_names=None,
        *,
        threshold: float = 0.5,
        target: str = "below",
        max_changes: int = 3,
        n_grid: int = 11,
        l1_penalty: float = 0.01,
        mutable_features=None,
    ):
        if target not in ("below", "above"):
            raise ValueError(f"target must be 'below' or 'above', got {target!r}")
        if max_changes < 1:
            raise ValueError(f"max_changes must be >= 1, got {max_changes}")
        if n_grid < 3:
            raise ValueError(f"n_grid must be >= 3, got {n_grid}")
        self.predict_fn = predict_fn
        data = np.asarray(data, dtype=float)
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D, got shape {data.shape}")
        d = data.shape[1]
        self.feature_names = (
            list(feature_names)
            if feature_names is not None
            else [f"x{i}" for i in range(d)]
        )
        if len(self.feature_names) != d:
            raise ValueError(f"{len(self.feature_names)} names for {d} features")
        self.threshold = float(threshold)
        self.target = target
        self.max_changes = int(max_changes)
        self.l1_penalty = float(l1_penalty)
        std = data.std(axis=0)
        self.std_ = np.where(std > 0, std, 1.0)
        percentiles = np.linspace(1, 99, n_grid)
        self.candidates_ = np.percentile(data, percentiles, axis=0)  # (g, d)
        if mutable_features is None:
            self.mutable_ = np.arange(d)
        else:
            index = {n: i for i, n in enumerate(self.feature_names)}
            unknown = [n for n in mutable_features if n not in index]
            if unknown:
                raise KeyError(f"unknown mutable features: {unknown}")
            self.mutable_ = np.asarray([index[n] for n in mutable_features])

    # ------------------------------------------------------------------
    def _objective(self, score: float) -> float:
        """Signed margin to the target side; negative = target reached."""
        if self.target == "below":
            return score - self.threshold
        return self.threshold - score

    def explain(self, x) -> Counterfactual:
        """Search for a minimal change that crosses the threshold."""
        x = np.asarray(x, dtype=float).ravel()
        d = len(self.feature_names)
        if len(x) != d:
            raise ValueError(f"x has {len(x)} features, expected {d}")
        current = x.copy()
        original_score = float(self.predict_fn(x.reshape(1, -1))[0])
        score = original_score
        changed_features: dict[int, float] = {}

        for _ in range(self.max_changes):
            if self._objective(score) < 0:
                break
            best = None  # (objective_with_penalty, j, value, raw_score)
            candidates_j = [
                j for j in self.mutable_ if j not in changed_features
            ]
            if not candidates_j:
                break
            # evaluate the full grid for all remaining features in one batch
            trials = []
            for j in candidates_j:
                for value in self.candidates_[:, j]:
                    if value == current[j]:
                        continue
                    trial = current.copy()
                    trial[j] = value
                    trials.append((j, value, trial))
            if not trials:
                break
            batch = np.vstack([t[2] for t in trials])
            scores = np.asarray(self.predict_fn(batch), dtype=float)
            for (j, value, _), trial_score in zip(trials, scores):
                penalty = (
                    self.l1_penalty * abs(value - x[j]) / self.std_[j]
                )
                objective = self._objective(float(trial_score)) + penalty
                if best is None or objective < best[0]:
                    best = (objective, j, value, float(trial_score))
            if best is None:
                break
            _, j, value, new_score = best
            # stop if the best move does not improve the raw objective
            if self._objective(new_score) >= self._objective(score):
                break
            current[j] = value
            score = new_score
            changed_features[j] = value

        changed = [
            (self.feature_names[j], float(x[j]), float(v))
            for j, v in sorted(changed_features.items())
        ]
        distance = float(
            sum(abs(v - x[j]) / self.std_[j] for j, v in changed_features.items())
        )
        return Counterfactual(
            x_original=x,
            x_counterfactual=current,
            changed=changed,
            prediction_original=original_score,
            prediction_counterfactual=score,
            success=self._objective(score) < 0,
            distance=distance,
        )
