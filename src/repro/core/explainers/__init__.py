"""Post-hoc explanation methods (all implemented from scratch).

Local attribution:

* :class:`ExactShapleyExplainer` — brute-force reference (d <= 15).
* :class:`KernelShapExplainer` — model-agnostic sampled Shapley.
* :class:`SamplingShapleyExplainer` — permutation-sampling Shapley.
* :class:`TreeShapExplainer` — exact, polynomial-time for tree models.
* :class:`LinearShapExplainer` — closed form for linear models.
* :class:`IntegratedGradientsExplainer` — path gradients for MLPs.
* :class:`LimeExplainer` — local ridge surrogates.
* :class:`CounterfactualExplainer` — minimal actionable changes.

Every local explainer offers ``explain(x)`` for one instance and
``explain_batch(X)`` returning a :class:`BatchExplanation`; the
sampling explainers override the batch path with a vectorized engine
that shares coalition designs / permutations / perturbations across
rows and stacks all model evaluations (see ``docs/explainers.md``).

Global views:

* :class:`PermutationImportance`, :class:`PartialDependence`,
  :class:`SurrogateTreeExplainer`; every local explainer also offers
  ``global_importance`` (mean |attribution|).
"""

from repro.core.explainers.base import (
    BatchExplanation,
    Explainer,
    Explanation,
    GlobalExplanation,
    ModelOutputFn,
    model_output_fn,
)
from repro.core.explainers.counterfactual import Counterfactual, CounterfactualExplainer
from repro.core.explainers.integrated_gradients import IntegratedGradientsExplainer
from repro.core.explainers.lime import LimeExplainer
from repro.core.explainers.pdp import PartialDependence, PDPResult
from repro.core.explainers.permutation import PermutationImportance
from repro.core.explainers.shap_exact import ExactShapleyExplainer
from repro.core.explainers.shap_kernel import KernelShapExplainer
from repro.core.explainers.shap_linear import LinearShapExplainer
from repro.core.explainers.shap_sampling import SamplingShapleyExplainer
from repro.core.explainers.shap_tree import TreeShapExplainer
from repro.core.explainers.shap_tree_interventional import (
    InterventionalTreeShapExplainer,
)
from repro.core.explainers.surrogate import SurrogateTreeExplainer

__all__ = [
    "BatchExplanation",
    "Counterfactual",
    "CounterfactualExplainer",
    "ExactShapleyExplainer",
    "Explainer",
    "EXPLAINER_METHODS",
    "Explanation",
    "GlobalExplanation",
    "IntegratedGradientsExplainer",
    "InterventionalTreeShapExplainer",
    "KernelShapExplainer",
    "LimeExplainer",
    "LinearShapExplainer",
    "make_explainer",
    "ModelOutputFn",
    "model_output_fn",
    "PartialDependence",
    "PDPResult",
    "PermutationImportance",
    "SamplingShapleyExplainer",
    "STOCHASTIC_EXPLAINERS",
    "SurrogateTreeExplainer",
    "TreeShapExplainer",
]

#: Every method name :func:`make_explainer` accepts (callers can
#: pre-flight user input against this instead of catching ValueError).
EXPLAINER_METHODS = (
    "auto",
    "exact_shapley",
    "integrated_gradients",
    "interventional_tree_shap",
    "kernel_shap",
    "lime",
    "linear_shap",
    "sampling_shapley",
    "tree_shap",
)

#: Methods whose estimates are sampled and therefore accept a
#: ``random_state`` constructor argument.  Experiment runners (the
#: scenario matrix, the streaming engine) seed exactly these so
#: integer-seeded runs are reproducible end to end — one shared
#: definition, so a new stochastic explainer cannot be seeded by one
#: runner and silently left unseeded by another.
STOCHASTIC_EXPLAINERS = frozenset(
    {"kernel_shap", "sampling_shapley", "lime"}
)

_TREE_MODELS = (
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "GradientBoostingClassifier",
    "GradientBoostingRegressor",
)
_LINEAR_MODELS = ("LinearRegression", "RidgeRegression", "LogisticRegression")


def make_explainer(
    method: str,
    model,
    background,
    feature_names=None,
    *,
    class_index: int = 1,
    **kwargs,
):
    """Factory: build an explainer by name for a fitted model.

    Parameters
    ----------
    method:
        ``"tree_shap"``, ``"interventional_tree_shap"``,
        ``"kernel_shap"``, ``"sampling_shapley"``, ``"exact_shapley"``,
        ``"linear_shap"``, ``"lime"``, ``"integrated_gradients"``, or
        ``"auto"`` (TreeSHAP for tree models, LinearSHAP for linear
        models, IG for MLPs, KernelSHAP otherwise).
    model:
        A fitted estimator from :mod:`repro.ml`.
    background:
        Background/training data (2-D array or FeatureMatrix).
    class_index:
        Output column to explain for classifiers.
    kwargs:
        Forwarded to the explainer constructor.
    """
    import numpy as np

    if hasattr(background, "values") and hasattr(background, "feature_names"):
        if feature_names is None:
            feature_names = background.feature_names
        background = background.values
    background = np.asarray(background, dtype=float)

    if method == "auto":
        kind = type(model).__name__
        if kind in _TREE_MODELS:
            method = "tree_shap"
        elif kind in _LINEAR_MODELS:
            method = "linear_shap"
        elif kind in ("MLPClassifier", "MLPRegressor"):
            method = "integrated_gradients"
        else:
            method = "kernel_shap"

    if method == "tree_shap":
        return TreeShapExplainer(
            model, feature_names, class_index=class_index, **kwargs
        )
    if method == "interventional_tree_shap":
        return InterventionalTreeShapExplainer(
            model, background, feature_names, class_index=class_index, **kwargs
        )
    if method == "linear_shap":
        return LinearShapExplainer(
            model, background, feature_names, class_index=class_index, **kwargs
        )
    if method == "integrated_gradients":
        return IntegratedGradientsExplainer(
            model, background, feature_names, class_index=class_index, **kwargs
        )
    fn = model_output_fn(model, class_index=class_index)
    if method == "kernel_shap":
        return KernelShapExplainer(fn, background, feature_names, **kwargs)
    if method == "sampling_shapley":
        return SamplingShapleyExplainer(fn, background, feature_names, **kwargs)
    if method == "exact_shapley":
        return ExactShapleyExplainer(fn, background, feature_names, **kwargs)
    if method == "lime":
        return LimeExplainer(fn, background, feature_names, **kwargs)
    raise ValueError(
        f"unknown explainer {method!r}; choose from "
        f"{', '.join(EXPLAINER_METHODS)}"
    )
