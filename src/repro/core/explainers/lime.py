"""LIME for tabular data (Ribeiro, Singh & Guestrin, KDD 2016).

The classic recipe: sample perturbations of the instance in
*standardized* feature space, query the black box, weight samples by an
exponential kernel on distance to the instance, and fit a (weighted)
ridge surrogate.  The surrogate's weighted R² is reported as the local
fidelity — experiment E4 sweeps it against the sampling width.

Attribution convention: we report ``coef_i * (x_i - mean_i) / std_i``,
i.e. the LinearSHAP values *of the local surrogate* w.r.t. the training
mean.  This makes LIME's output directly comparable to the SHAP-family
explainers in faithfulness/agreement experiments (E5, E7), instead of
mixing "sensitivities" with "contributions".
"""

from __future__ import annotations

import numpy as np

from repro.core.explainers.base import BatchExplanation, Explainer, Explanation
from repro.ml.linear import solve_weighted_ridge
from repro.utils.rng import check_random_state

__all__ = ["LimeExplainer"]

#: Upper bound on rows per stacked model call when batching instances.
_ROW_BUDGET = 32768


class LimeExplainer(Explainer):
    """Local surrogate explanations for any model.

    Parameters
    ----------
    predict_fn:
        ``f(X) -> 1-D scores``.
    training_data:
        Data defining feature means/stds for standardization and
        perturbation scales.
    n_samples:
        Perturbations per explanation.
    kernel_width:
        Width of the exponential weighting kernel in standardized
        distance units; defaults to ``0.75 * sqrt(d)`` (the reference
        implementation's default).
    sampling_scale:
        Standard deviation of the perturbations, in units of each
        feature's std.
    n_features:
        If set, keep only the ``k`` largest-|coef| features and refit
        the surrogate on them (classic LIME feature selection); the
        remaining attributions are exactly zero.
    alpha:
        Ridge regularization of the surrogate.
    """

    method_name = "lime"

    def __init__(
        self,
        predict_fn,
        training_data,
        feature_names=None,
        *,
        n_samples: int = 1000,
        kernel_width: float | None = None,
        sampling_scale: float = 1.0,
        n_features: int | None = None,
        alpha: float = 1e-3,
        random_state=None,
    ):
        if n_samples < 10:
            raise ValueError(f"n_samples must be >= 10, got {n_samples}")
        if sampling_scale <= 0:
            raise ValueError(f"sampling_scale must be positive, got {sampling_scale}")
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        training_data = np.asarray(training_data, dtype=float)
        if training_data.ndim != 2:
            raise ValueError(
                f"training_data must be 2-D, got shape {training_data.shape}"
            )
        d = training_data.shape[1]
        if n_features is not None and not 1 <= n_features <= d:
            raise ValueError(
                f"n_features must be in [1, {d}], got {n_features}"
            )
        self.predict_fn = predict_fn
        self.mean_ = training_data.mean(axis=0)
        std = training_data.std(axis=0)
        self.std_ = np.where(std > 0, std, 1.0)
        self.feature_names = (
            list(feature_names)
            if feature_names is not None
            else [f"x{i}" for i in range(d)]
        )
        if len(self.feature_names) != d:
            raise ValueError(f"{len(self.feature_names)} names for {d} features")
        self.n_samples = int(n_samples)
        self.kernel_width = (
            float(kernel_width) if kernel_width is not None else 0.75 * np.sqrt(d)
        )
        if self.kernel_width <= 0:
            raise ValueError(f"kernel_width must be positive, got {kernel_width}")
        self.sampling_scale = float(sampling_scale)
        self.n_features = n_features
        self.alpha = float(alpha)
        self.random_state = random_state

    # ------------------------------------------------------------------
    def explain(self, x) -> Explanation:
        x = np.asarray(x, dtype=float).ravel()
        d = len(self.mean_)
        if len(x) != d:
            raise ValueError(f"x has {len(x)} features, expected {d}")
        rng = check_random_state(self.random_state)

        x_std = (x - self.mean_) / self.std_
        z_std = x_std + rng.normal(
            0.0, self.sampling_scale, size=(self.n_samples, d)
        )
        z_std[0] = x_std  # always include the instance itself
        z_raw = z_std * self.std_ + self.mean_
        targets = np.asarray(self.predict_fn(z_raw), dtype=float)

        phi, extras = self._fit_local_surrogate(x_std, z_std, targets)
        prediction = float(targets[0])
        return Explanation(
            feature_names=self.feature_names,
            values=phi,
            base_value=prediction - float(phi.sum()),
            prediction=prediction,
            x=x,
            method=self.method_name,
            extras=extras,
        )

    def _fit_local_surrogate(
        self, x_std: np.ndarray, z_std: np.ndarray, targets: np.ndarray
    ) -> tuple[np.ndarray, dict]:
        """Fit the weighted ridge surrogate around one standardized
        instance and return ``(attributions, extras)``."""
        d = len(x_std)
        distances = np.sqrt(np.sum((z_std - x_std) ** 2, axis=1))
        weights = np.exp(-(distances**2) / self.kernel_width**2)

        coef, intercept = solve_weighted_ridge(
            z_std, targets, weights, alpha=self.alpha
        )
        selected = np.arange(d)
        if self.n_features is not None and self.n_features < d:
            selected = np.argsort(-np.abs(coef))[: self.n_features]
            coef_sel, intercept = solve_weighted_ridge(
                z_std[:, selected], targets, weights, alpha=self.alpha
            )
            coef = np.zeros(d)
            coef[selected] = coef_sel

        fidelity = self._weighted_r2(z_std, targets, weights, coef, intercept)
        phi = coef * x_std
        extras = {
            "fidelity_r2": fidelity,
            "coefficients": coef,
            "intercept": float(intercept),
            "selected_features": selected,
            "kernel_width": self.kernel_width,
        }
        return phi, extras

    def explain_batch(self, X) -> BatchExplanation:
        """Vectorized LIME over every row of ``X``.

        One perturbation noise matrix is drawn and shared by all rows
        (matching the per-sample RNG discipline for integer seeds), and
        the black-box queries of many rows are stacked into large
        ``predict_fn`` calls — the dominant cost.  Each row still gets
        its own weighted ridge surrogate, fitted exactly as in
        :meth:`explain`.
        """
        X = self._check_batch(X, len(self.mean_))
        if X.shape[0] == 0:
            return self._empty_batch(X)
        n, d = X.shape
        rng = check_random_state(self.random_state)
        noise = rng.normal(
            0.0, self.sampling_scale, size=(self.n_samples, d)
        )
        X_std = (X - self.mean_) / self.std_

        values = np.empty((n, d))
        base_values = np.empty(n)
        predictions = np.empty(n)
        sample_extras: list[dict] = []
        chunk = max(1, _ROW_BUDGET // self.n_samples)
        for start in range(0, n, chunk):
            Xc = X_std[start : start + chunk]
            z_std = Xc[:, None, :] + noise[None, :, :]
            z_std[:, 0, :] = Xc  # always include the instance itself
            z_raw = z_std * self.std_ + self.mean_
            targets = np.asarray(
                self.predict_fn(z_raw.reshape(-1, d)), dtype=float
            ).reshape(len(Xc), self.n_samples)
            for i in range(len(Xc)):
                phi, extras = self._fit_local_surrogate(
                    Xc[i], z_std[i], targets[i]
                )
                row = start + i
                values[row] = phi
                predictions[row] = targets[i, 0]
                base_values[row] = predictions[row] - float(phi.sum())
                sample_extras.append(extras)
        return BatchExplanation(
            feature_names=self.feature_names,
            values=values,
            base_values=base_values,
            predictions=predictions,
            X=X,
            method=self.method_name,
            sample_extras=sample_extras,
        )

    @staticmethod
    def _weighted_r2(Z, y, w, coef, intercept) -> float:
        pred = Z @ coef + intercept
        w_sum = w.sum()
        if w_sum <= 0:
            return 0.0
        y_bar = float(np.sum(w * y) / w_sum)
        ss_res = float(np.sum(w * (y - pred) ** 2))
        ss_tot = float(np.sum(w * (y - y_bar) ** 2))
        if ss_tot == 0.0:
            return 1.0 if ss_res == 0.0 else 0.0
        return 1.0 - ss_res / ss_tot
