"""KernelSHAP (Lundberg & Lee, NeurIPS 2017) from scratch.

Shapley values are recovered as the solution of a weighted linear
regression over feature coalitions, with the Shapley kernel

    pi(s) = (d - 1) / (C(d, s) * s * (d - s)),   0 < s < d.

Implementation notes (mirroring the reference implementation's
behaviour):

* Coalition sizes are *enumerated completely* from the outside in
  (size 1 and d-1, then 2 and d-2, ...) while the sample budget allows;
  remaining budget is spent sampling random coalitions from the kernel
  distribution over the unenumerated sizes.
* Paired (antithetic) sampling draws each random coalition together
  with its complement, which cancels odd-order noise terms (ablated in
  experiment E8).
* The efficiency constraint ``sum(phi) = f(x) - E[f]`` is enforced
  exactly by eliminating the last feature from the regression, never by
  post-hoc normalization.
"""

from __future__ import annotations

from itertools import combinations
from math import comb

import numpy as np

from repro.core.cache import background_predictions, coalition_design
from repro.core.explainers.base import BatchExplanation, Explainer, Explanation
from repro.utils.rng import check_random_state

__all__ = ["KernelShapExplainer", "shapley_kernel_weight"]

#: Upper bound on rows per stacked model call when batching coalitions.
#: Tuned empirically: big enough to amortize per-call dispatch, small
#: enough that the hybrid block stays cache-resident (giant single
#: calls measured slower on every bundled model family).
_ROW_BUDGET = 8192


def shapley_kernel_weight(d: int, s: int) -> float:
    """Shapley kernel weight of a coalition of size ``s`` among ``d``
    features.  Sizes 0 and d carry (conceptually) infinite weight and are
    handled via the efficiency constraint, so they are invalid here."""
    if not 0 < s < d:
        raise ValueError(f"coalition size must be in (0, {d}), got {s}")
    return (d - 1) / (comb(d, s) * s * (d - s))


class KernelShapExplainer(Explainer):
    """Model-agnostic Shapley value estimation.

    Parameters
    ----------
    predict_fn:
        ``f(X) -> 1-D scores``.
    background:
        Background data defining the "feature absent" distribution.
        Keep it small (tens to a few hundred rows) — every coalition
        costs one model evaluation *per background row*.
    n_samples:
        Coalition budget per explanation (excluding the empty/full
        coalitions).  More samples → lower variance (E8).
    paired:
        Draw sampled coalitions together with their complements.
    l2:
        Optional ridge regularization on the coalition regression
        (0 = plain weighted least squares, the canonical estimator).
    """

    method_name = "kernel_shap"

    def __init__(
        self,
        predict_fn,
        background,
        feature_names=None,
        *,
        n_samples: int = 2048,
        paired: bool = True,
        l2: float = 0.0,
        random_state=None,
    ):
        if n_samples < 2:
            raise ValueError(f"n_samples must be >= 2, got {n_samples}")
        if l2 < 0:
            raise ValueError(f"l2 must be >= 0, got {l2}")
        self.predict_fn = predict_fn
        self.background = np.asarray(background, dtype=float)
        if self.background.ndim != 2:
            raise ValueError(
                f"background must be 2-D, got shape {self.background.shape}"
            )
        d = self.background.shape[1]
        self.feature_names = (
            list(feature_names)
            if feature_names is not None
            else [f"x{i}" for i in range(d)]
        )
        if len(self.feature_names) != d:
            raise ValueError(f"{len(self.feature_names)} names for {d} features")
        self.n_samples = int(n_samples)
        self.paired = paired
        self.l2 = float(l2)
        self.random_state = random_state
        self.expected_value_ = float(
            np.mean(background_predictions(predict_fn, self.background))
        )

    # ------------------------------------------------------------------
    def explain(self, x) -> Explanation:
        x = np.asarray(x, dtype=float).ravel()
        d = self.background.shape[1]
        if len(x) != d:
            raise ValueError(f"x has {len(x)} features, expected {d}")

        masks, weights = self._coalition_design(d)
        v = self._coalition_values(x, masks)
        fx = float(self.predict_fn(x.reshape(1, -1))[0])
        v0 = self.expected_value_

        phi = self._solve(masks, weights, v, fx, v0)
        return Explanation(
            feature_names=self.feature_names,
            values=phi,
            base_value=v0,
            prediction=fx,
            x=x,
            method=self.method_name,
            extras={"n_coalitions": len(masks)},
        )

    def explain_batch(self, X) -> BatchExplanation:
        """Vectorized KernelSHAP over every row of ``X``.

        The coalition design (masks + kernel weights) depends only on
        the feature dimension and sampling configuration, so it is
        built once and shared by all rows; the masked-background model
        evaluations for all (row, coalition) pairs are stacked into a
        handful of large ``predict_fn`` calls; and the weighted
        regression is solved for all rows at once against the shared
        Gram matrix.  With an integer ``random_state`` this reproduces
        the per-sample :meth:`explain` results exactly.
        """
        X = self._check_batch(X, self.background.shape[1])
        if X.shape[0] == 0:
            return self._empty_batch(X)
        n, d = X.shape
        masks, weights = self._coalition_design(d)
        V = self._batch_coalition_values(X, masks)
        fx = np.asarray(self.predict_fn(X), dtype=float)
        v0 = self.expected_value_

        # shared weighted least squares, one right-hand side per row
        z = masks.astype(float)
        A = z[:, :-1] - z[:, [-1]]
        Y = V - v0 - z[:, -1][:, None] * (fx[None, :] - v0)
        gram = A.T @ (weights[:, None] * A)
        if self.l2 > 0:
            gram = gram + self.l2 * np.eye(d - 1)
        rhs = A.T @ (weights[:, None] * Y)
        head, *_ = np.linalg.lstsq(gram, rhs, rcond=None)
        phi = np.empty((n, d))
        phi[:, :-1] = head.T
        phi[:, -1] = (fx - v0) - head.sum(axis=0)
        return BatchExplanation(
            feature_names=self.feature_names,
            values=phi,
            base_values=np.full(n, v0),
            predictions=fx,
            X=X,
            method=self.method_name,
            extras={"n_coalitions": len(masks)},
        )

    # ------------------------------------------------------------------
    def _coalition_design(self, d: int) -> tuple[np.ndarray, np.ndarray]:
        """The (masks, weights) design, memoized for integer seeds.

        A live :class:`~numpy.random.Generator` must advance between
        calls, so only deterministic integer seeds hit the cache.
        """
        seed = self.random_state
        if isinstance(seed, (int, np.integer)) and not isinstance(seed, bool):
            key = (
                "kernel_shap", d, self.n_samples, self.paired, int(seed)
            )
            return coalition_design(
                key,
                lambda: self._build_coalitions(
                    d, check_random_state(int(seed))
                ),
            )
        return self._build_coalitions(d, check_random_state(seed))

    # ------------------------------------------------------------------
    def _build_coalitions(self, d: int, rng) -> tuple[np.ndarray, np.ndarray]:
        """Binary coalition masks and their regression weights."""
        budget = self.n_samples
        masks: list[np.ndarray] = []
        weights: list[float] = []

        # enumerate complete sizes from the outside in while affordable
        n_pair_sizes = (d - 1) // 2
        has_middle = (d - 1) % 2 == 1  # d even -> lone middle size d/2
        enumerated_sizes: set[int] = set()
        for offset in range(1, n_pair_sizes + 1):
            sizes = (offset, d - offset)
            cost = comb(d, offset) * 2
            if cost > budget:
                break
            size_weight = shapley_kernel_weight(d, offset)
            for size in sizes:
                for subset in combinations(range(d), size):
                    mask = np.zeros(d, dtype=bool)
                    mask[list(subset)] = True
                    masks.append(mask)
                    weights.append(size_weight)
            enumerated_sizes.update(sizes)
            budget -= cost
        if has_middle:
            middle = d // 2
            cost = comb(d, middle)
            if middle not in enumerated_sizes and cost <= budget:
                size_weight = shapley_kernel_weight(d, middle)
                for subset in combinations(range(d), middle):
                    mask = np.zeros(d, dtype=bool)
                    mask[list(subset)] = True
                    masks.append(mask)
                    weights.append(size_weight)
                enumerated_sizes.add(middle)
                budget -= cost

        remaining_sizes = [
            s for s in range(1, d) if s not in enumerated_sizes
        ]
        if remaining_sizes and budget > 0:
            # sample sizes proportionally to the total kernel mass of
            # each remaining size, then uniform subsets within a size
            size_mass = np.array(
                [shapley_kernel_weight(d, s) * comb(d, s) for s in remaining_sizes]
            )
            size_prob = size_mass / size_mass.sum()
            step = 2 if self.paired else 1
            n_draws = budget // step
            n_before = len(masks)
            drawn_sizes = rng.choice(remaining_sizes, size=n_draws, p=size_prob)
            for s in drawn_sizes:
                subset = rng.choice(d, size=int(s), replace=False)
                mask = np.zeros(d, dtype=bool)
                mask[subset] = True
                masks.append(mask)
                weights.append(1.0)
                if self.paired:
                    masks.append(~mask)
                    weights.append(1.0)
            # the kernel is already encoded in the sampling distribution,
            # so sampled coalitions share the *remaining* kernel mass
            # equally — this keeps them on the same scale as the
            # enumerated coalitions, which carry explicit kernel weights
            n_sampled = len(masks) - n_before
            if n_sampled > 0:
                per_sample = float(size_mass.sum()) / n_sampled
                for i in range(n_before, len(masks)):
                    weights[i] = per_sample
        if not masks:
            raise RuntimeError(
                "no coalitions generated; increase n_samples"
            )
        return np.asarray(masks), np.asarray(weights)

    def _coalition_values(self, x: np.ndarray, masks: np.ndarray) -> np.ndarray:
        """``v(S)`` for every mask: mean prediction over background rows
        with coalition features replaced by ``x``'s values."""
        n_bg = len(self.background)
        values = np.empty(len(masks))
        # evaluate in blocks to bound memory: each mask expands to n_bg rows
        block = max(1, 4096 // n_bg)
        for start in range(0, len(masks), block):
            chunk = masks[start : start + block]
            tiled = np.repeat(self.background[None, :, :], len(chunk), axis=0)
            for row, mask in enumerate(chunk):
                tiled[row, :, mask] = x[mask, None]
            flat = tiled.reshape(-1, self.background.shape[1])
            preds = np.asarray(self.predict_fn(flat), dtype=float)
            values[start : start + len(chunk)] = preds.reshape(
                len(chunk), n_bg
            ).mean(axis=1)
        return values

    def _batch_coalition_values(
        self, X: np.ndarray, masks: np.ndarray
    ) -> np.ndarray:
        """``v(S)`` for every (coalition, row) pair, shape ``(m, n)``.

        Stacks the masked-background hybrids of *all* rows for a block
        of coalitions into a single model call, so the per-call
        dispatch overhead is paid ``m / block`` times instead of
        ``m * n`` times.
        """
        n, d = X.shape
        n_bg = len(self.background)
        m = len(masks)
        V = np.empty((m, n))
        # a huge fleet alone can exceed the row budget: chunk the rows
        # first, then the coalitions within each row chunk
        max_rows = max(1, _ROW_BUDGET // n_bg)
        if n > max_rows:
            for start in range(0, n, max_rows):
                V[:, start : start + max_rows] = self._batch_coalition_values(
                    X[start : start + max_rows], masks
                )
            return V
        block = max(1, _ROW_BUDGET // max(1, n * n_bg))
        for start in range(0, m, block):
            chunk = masks[start : start + block]
            b = len(chunk)
            # hybrid(j, i, r) = x_i where mask_j, background_r elsewhere —
            # one broadcasted where() builds the whole block
            tiled = np.where(
                chunk[:, None, None, :],
                X[None, :, None, :],
                self.background[None, None, :, :],
            )
            preds = np.asarray(
                self.predict_fn(tiled.reshape(-1, d)), dtype=float
            )
            V[start : start + b] = preds.reshape(b, n, n_bg).mean(axis=2)
        return V

    def _solve(self, masks, weights, v, fx, v0) -> np.ndarray:
        """Weighted least squares with the efficiency constraint enforced
        by eliminating the last feature."""
        d = masks.shape[1]
        z = masks.astype(float)
        # target with the constraint substituted in
        y = v - v0 - z[:, -1] * (fx - v0)
        A = z[:, :-1] - z[:, [-1]]
        sw = weights
        gram = A.T @ (sw[:, None] * A)
        if self.l2 > 0:
            gram += self.l2 * np.eye(d - 1)
        rhs = A.T @ (sw * y)
        head, *_ = np.linalg.lstsq(gram, rhs, rcond=None)
        phi = np.empty(d)
        phi[:-1] = head
        phi[-1] = (fx - v0) - head.sum()
        return phi
