"""Partial dependence and ICE curves.

Global "what does the model do as this feature moves" views — the NFV
pipeline uses them to show an operator how predicted violation risk
responds to, e.g., a VNF's CPU utilization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PartialDependence", "PDPResult"]


@dataclass
class PDPResult:
    """Result of a partial-dependence computation.

    Attributes
    ----------
    feature_name:
        The swept feature.
    grid:
        Values the feature was set to.
    average:
        Partial dependence (mean prediction per grid point).
    ice:
        Optional per-sample curves, shape ``(n_samples, n_grid)``.
    """

    feature_name: str
    grid: np.ndarray
    average: np.ndarray
    ice: np.ndarray | None = None

    @property
    def slope(self) -> float:
        """Least-squares slope of the PD curve — a crude but useful
        summary of direction and strength."""
        g = self.grid - self.grid.mean()
        denom = float(np.sum(g * g))
        if denom == 0.0:
            return 0.0
        return float(np.sum(g * (self.average - self.average.mean())) / denom)


class PartialDependence:
    """Computes PD/ICE curves for one model.

    Parameters
    ----------
    predict_fn:
        ``f(X) -> 1-D scores``.
    data:
        Reference dataset the curves marginalize over.
    """

    method_name = "pdp"

    def __init__(self, predict_fn, data, feature_names=None):
        self.predict_fn = predict_fn
        self.data = np.asarray(data, dtype=float)
        if self.data.ndim != 2:
            raise ValueError(f"data must be 2-D, got shape {self.data.shape}")
        d = self.data.shape[1]
        self.feature_names = (
            list(feature_names)
            if feature_names is not None
            else [f"x{i}" for i in range(d)]
        )
        if len(self.feature_names) != d:
            raise ValueError(f"{len(self.feature_names)} names for {d} features")

    def _resolve(self, feature) -> int:
        if isinstance(feature, str):
            try:
                return self.feature_names.index(feature)
            except ValueError:
                raise KeyError(f"unknown feature {feature!r}") from None
        index = int(feature)
        if not 0 <= index < self.data.shape[1]:
            raise IndexError(f"feature index {index} out of range")
        return index

    def compute(
        self,
        feature,
        *,
        grid_size: int = 20,
        percentile_range: tuple[float, float] = (5.0, 95.0),
        with_ice: bool = False,
        max_ice_samples: int = 50,
    ) -> PDPResult:
        """Sweep ``feature`` over a percentile grid of its observed values.

        ``with_ice`` additionally keeps per-sample curves (subsampled to
        ``max_ice_samples`` rows for tractability).
        """
        if grid_size < 2:
            raise ValueError(f"grid_size must be >= 2, got {grid_size}")
        lo, hi = percentile_range
        if not 0 <= lo < hi <= 100:
            raise ValueError(f"bad percentile_range {percentile_range}")
        j = self._resolve(feature)
        column = self.data[:, j]
        grid = np.linspace(
            np.percentile(column, lo), np.percentile(column, hi), grid_size
        )
        rows = self.data
        if with_ice and len(rows) > max_ice_samples:
            stride = len(rows) // max_ice_samples
            rows = rows[::stride][:max_ice_samples]
        curves = np.empty((len(rows), grid_size))
        for g, value in enumerate(grid):
            modified = rows.copy()
            modified[:, j] = value
            curves[:, g] = self.predict_fn(modified)
        # PD averages over the full dataset (not the ICE subsample)
        if with_ice and len(rows) != len(self.data):
            average = np.empty(grid_size)
            for g, value in enumerate(grid):
                modified = self.data.copy()
                modified[:, j] = value
                average[g] = float(np.mean(self.predict_fn(modified)))
        else:
            average = curves.mean(axis=0)
        return PDPResult(
            feature_name=self.feature_names[j],
            grid=grid,
            average=average,
            ice=curves if with_ice else None,
        )
