"""LinearSHAP: closed-form Shapley values for linear models.

For ``f(x) = w . x + b`` and independent features, the Shapley value of
feature ``i`` is exactly ``w_i * (x_i - E[x_i])`` — no sampling needed.
For logistic regression the explained output is the log-odds margin
(the additive quantity); probabilities are not additive in the
features.
"""

from __future__ import annotations

import numpy as np

from repro.core.explainers.base import BatchExplanation, Explainer, Explanation
from repro.ml.linear import LinearRegression, LogisticRegression, RidgeRegression

__all__ = ["LinearShapExplainer"]


class LinearShapExplainer(Explainer):
    """Exact Shapley attribution for linear/logistic models.

    Parameters
    ----------
    model:
        A fitted :class:`LinearRegression`, :class:`RidgeRegression` or
        :class:`LogisticRegression`.
    background:
        Data whose column means define ``E[x]``.
    class_index:
        For logistic models: which class's margin to explain.
    """

    method_name = "linear_shap"

    def __init__(self, model, background, feature_names=None, *, class_index: int = 1):
        if isinstance(model, (LinearRegression, RidgeRegression)):
            coef = np.asarray(model.coef_, dtype=float)
            intercept = float(model.intercept_)
        elif isinstance(model, LogisticRegression):
            if not 0 <= class_index < len(model.classes_):
                raise ValueError(
                    f"class_index {class_index} out of range for "
                    f"{len(model.classes_)} classes"
                )
            coef = np.asarray(model.coef_[:, class_index], dtype=float)
            intercept = float(model.intercept_[class_index])
        else:
            raise TypeError(
                "LinearShapExplainer supports LinearRegression, "
                f"RidgeRegression and LogisticRegression; got "
                f"{type(model).__name__}"
            )
        background = np.asarray(background, dtype=float)
        if background.ndim != 2 or background.shape[1] != len(coef):
            raise ValueError(
                f"background shape {background.shape} incompatible with "
                f"{len(coef)} coefficients"
            )
        self.model = model
        self.coef_ = coef
        self.intercept_ = intercept
        self.mean_ = background.mean(axis=0)
        self.feature_names = (
            list(feature_names)
            if feature_names is not None
            else [f"x{i}" for i in range(len(coef))]
        )
        if len(self.feature_names) != len(coef):
            raise ValueError(
                f"{len(self.feature_names)} names for {len(coef)} features"
            )
        self.expected_value_ = float(self.mean_ @ coef + intercept)

    def explain(self, x) -> Explanation:
        x = np.asarray(x, dtype=float).ravel()
        if len(x) != len(self.coef_):
            raise ValueError(
                f"x has {len(x)} features, expected {len(self.coef_)}"
            )
        phi = self.coef_ * (x - self.mean_)
        prediction = float(x @ self.coef_ + self.intercept_)
        return Explanation(
            feature_names=self.feature_names,
            values=phi,
            base_value=self.expected_value_,
            prediction=prediction,
            x=x,
            method=self.method_name,
        )

    def explain_batch(self, X) -> BatchExplanation:
        """Closed-form LinearSHAP for every row at once:
        ``phi = coef * (X - E[x])`` — a single broadcasted product."""
        X = self._check_batch(X, len(self.coef_))
        if X.shape[0] == 0:
            return self._empty_batch(X)
        phi = self.coef_ * (X - self.mean_)
        predictions = X @ self.coef_ + self.intercept_
        return BatchExplanation(
            feature_names=self.feature_names,
            values=phi,
            base_values=np.full(len(X), self.expected_value_),
            predictions=predictions,
            X=X,
            method=self.method_name,
        )
