"""Argument wiring for the lint command.

Shared by the ``repro lint`` subcommand and the numpy-free standalone
entry point ``python -m repro.analysis`` — the CI lint job uses the
latter so it never installs the numerical stack the rest of the CLI
needs.
"""

from __future__ import annotations

import os
import sys

__all__ = ["add_lint_arguments", "run_lint_command"]


def add_lint_arguments(parser) -> None:
    """Attach the lint command's arguments to ``parser``."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directory trees to analyze (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json is the CI artifact format)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="committed baseline JSON; matching findings do not gate",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite --baseline to grandfather every current finding "
             "(keeps justifications of retained entries)",
    )
    parser.add_argument(
        "--gate", action="append", default=None, metavar="PATH",
        help="only findings under PATH fail the run (repeatable; "
             "default: every analyzed path gates)",
    )
    parser.add_argument(
        "--report-only", action="store_true",
        help="always exit 0, whatever is found",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the report to FILE (e.g. the CI artifact)",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="text format: also list baselined findings",
    )


def run_lint_command(args) -> int:
    """Execute a parsed lint command; returns the process exit code."""
    from repro.analysis import (
        Baseline,
        render_json,
        render_text,
        run_lint,
    )

    baseline = None
    if args.baseline is not None and os.path.exists(args.baseline):
        baseline = Baseline.load(args.baseline)

    report = run_lint(args.paths, baseline=baseline)

    if args.update_baseline:
        if args.baseline is None:
            print("error: --update-baseline requires --baseline FILE",
                  file=sys.stderr)
            return 2
        refreshed = Baseline.from_findings(
            report.findings + report.baselined,
            note=baseline.note if baseline is not None else (
                "Grandfathered findings; new code must be clean. "
                "See docs/linting.md."
            ),
            previous=baseline,
        )
        refreshed.dump(args.baseline)
        print(f"baseline written: {args.baseline} "
              f"({len(refreshed.entries)} entries)")
        return 0

    rendered = (render_json(report) if args.format == "json"
                else render_text(report, verbose=args.verbose))
    print(rendered)
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(rendered + "\n")

    if args.report_only:
        return 0
    gates = args.gate if args.gate else list(args.paths)
    return 1 if report.gate_failures(gates) else 0
