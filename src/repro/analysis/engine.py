"""The AST visitor engine.

One pass per module: a pre-pass collects import aliases, module-level
mutable bindings, and lock declarations; the main recursive walk then
feeds every node to every registered checker while maintaining the
lexical context rules need — the enclosing function stack (with its
local bindings, nested defs, and ``global`` declarations) and the
``with <lock>:`` nesting depth.

Checkers are small classes with a single ``check(node, ctx)`` hook
returning findings; they are pure functions of the node plus context,
which keeps each rule independently testable on source snippets.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.findings import Finding

__all__ = [
    "Checker",
    "FunctionScope",
    "ModuleContext",
    "analyze_source",
    "dotted_name",
    "is_set_expr",
]

#: constructors whose result is module-level *mutable* state worth
#: guarding (the C-family's definition of "mutable binding")
_MUTABLE_CONSTRUCTORS = {
    "list", "dict", "set", "bytearray",
    "OrderedDict", "defaultdict", "deque", "Counter",
    "WeakKeyDictionary", "WeakValueDictionary",
}


def dotted_name(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """Resolve an attribute chain to its dotted module path.

    ``np.random.default_rng`` with ``{"np": "numpy"}`` resolves to
    ``"numpy.random.default_rng"``; a chain rooted at an unknown local
    name resolves to ``None``.
    """
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    base = aliases.get(current.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


def is_set_expr(node: ast.AST, ctx: "ModuleContext | None" = None) -> bool:
    """Syntactic check: does ``node`` evaluate to a set?

    Recognizes set literals and comprehensions, ``set(...)`` /
    ``frozenset(...)`` calls, set-algebra expressions over them, and
    names every assignment of which (in the enclosing function, or at
    module level) is itself a set expression.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)
    ):
        return is_set_expr(node.left, ctx) or is_set_expr(node.right, ctx)
    if isinstance(node, ast.Name) and ctx is not None:
        scope = ctx.current_function
        if scope is not None and node.id in scope.set_typed_names:
            return True
        if (
            node.id in ctx.module_set_names
            and (scope is None or node.id not in scope.bound_names)
        ):
            return True
    return False


@dataclass
class FunctionScope:
    """Lexical facts about one function on the traversal stack."""

    node: ast.AST
    #: every name bound locally (parameters + assignment targets +
    #: nested def/class names) — used to detect shadowing
    bound_names: set[str] = field(default_factory=set)
    #: names of functions/lambdas defined inside this function
    nested_callables: set[str] = field(default_factory=set)
    #: names declared ``global`` in this function
    global_names: set[str] = field(default_factory=set)
    #: local names whose every assignment is a set expression
    set_typed_names: set[str] = field(default_factory=set)


class ModuleContext:
    """Everything a checker may ask about the module being analyzed."""

    def __init__(self, path: str, tree: ast.Module, source: str):
        self.path = path
        self.source_lines = source.splitlines()
        self.aliases: dict[str, str] = {}
        self.module_mutable_names: set[str] = set()
        self.module_set_names: set[str] = set()
        self.lock_names: set[str] = set()
        self.declares_lock = False
        self.function_stack: list[FunctionScope] = []
        self.lock_depth = 0
        self.parents: dict[int, ast.AST] = {}
        self._prime(tree)

    # ------------------------------------------------------------------
    @property
    def current_function(self) -> FunctionScope | None:
        return self.function_stack[-1] if self.function_stack else None

    def parent_of(self, node: ast.AST) -> ast.AST | None:
        return self.parents.get(id(node))

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.source_lines):
            return self.source_lines[lineno - 1].strip()
        return ""

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=rule,
            path=self.path,
            line=node.lineno,
            col=node.col_offset,
            message=message,
            snippet=self.source_line(node.lineno),
        )

    def name_is_local(self, name: str) -> bool:
        """Is ``name`` rebound by any function on the current stack?"""
        return any(name in scope.bound_names for scope in self.function_stack)

    def name_is_nested_callable(self, name: str) -> bool:
        return any(
            name in scope.nested_callables for scope in self.function_stack
        )

    # ------------------------------------------------------------------
    def _prime(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self.parents[id(child)] = node
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.aliases[alias.asname] = alias.name
                    else:
                        # `import numpy.random` binds the *root* name
                        root = alias.name.split(".")[0]
                        self.aliases[root] = root
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports stay local to the package
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.aliases[bound] = f"{node.module}.{alias.name}"
        for stmt in tree.body:
            self._prime_module_binding(stmt)
        # lock declarations can live anywhere (commonly ``self._lock =
        # threading.RLock()`` inside __init__)
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and self._is_lock_call(node.value):
                self.declares_lock = True
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.lock_names.add(target.id)
                    elif isinstance(target, ast.Attribute):
                        self.lock_names.add(target.attr)

    def _prime_module_binding(self, stmt: ast.stmt) -> None:
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            return
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )
        value = stmt.value
        if value is None:
            return
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if self._is_mutable_constructor(value):
                self.module_mutable_names.add(target.id)
            if is_set_expr(value):
                self.module_set_names.add(target.id)

    @staticmethod
    def _is_mutable_constructor(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = None
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            return name in _MUTABLE_CONSTRUCTORS
        return False

    def _is_lock_call(self, node: ast.expr | None) -> bool:
        if not isinstance(node, ast.Call):
            return False
        resolved = dotted_name(node.func, self.aliases)
        return resolved in ("threading.Lock", "threading.RLock")

    def with_item_is_lock(self, item: ast.withitem) -> bool:
        """Heuristic: a ``with`` context manager counts as "the lock"
        when its dotted name ends in a declared lock binding or simply
        mentions "lock" (``self._lock``, ``cache_lock``, ...)."""
        expr = item.context_expr
        # ``with lock.acquire_timeout(...)``-style calls: inspect func
        if isinstance(expr, ast.Call):
            expr = expr.func
        name = None
        if isinstance(expr, ast.Attribute):
            name = expr.attr
        elif isinstance(expr, ast.Name):
            name = expr.id
        if name is None:
            return False
        return name in self.lock_names or "lock" in name.lower()


class Checker:
    """Base class for rule checkers: override :meth:`check`."""

    def check(self, node: ast.AST, ctx: ModuleContext):  # pragma: no cover
        raise NotImplementedError


def _binding_names(target: ast.expr) -> list[str]:
    """Names actually (re)bound by an assignment/loop target.

    ``x = ...`` and ``x, y = ...`` bind; ``obj[k] = ...`` and
    ``obj.attr = ...`` mutate an existing object and bind nothing —
    treating their base name as a local would hide module-state
    mutations behind a phantom shadow.
    """
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, ast.Starred):
        return _binding_names(target.value)
    if isinstance(target, (ast.Tuple, ast.List)):
        names: list[str] = []
        for elt in target.elts:
            names.extend(_binding_names(elt))
        return names
    return []


def _scan_function_scope(node) -> FunctionScope:
    """Collect the local bindings of one function without descending
    into functions nested inside it."""
    scope = FunctionScope(node=node)
    args = node.args
    for arg in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        scope.bound_names.add(arg.arg)
    if isinstance(node, ast.Lambda):
        return scope

    set_assignments: dict[str, list[bool]] = {}

    def visit(stmt_or_expr, top: bool) -> None:
        for child in ast.iter_child_nodes(stmt_or_expr):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope.bound_names.add(child.name)
                scope.nested_callables.add(child.name)
                continue  # do not descend: its locals are its own
            if isinstance(child, ast.ClassDef):
                scope.bound_names.add(child.name)
                continue
            if isinstance(child, ast.Global):
                scope.global_names.update(child.names)
            if isinstance(child, ast.Assign):
                for target in child.targets:
                    scope.bound_names.update(_binding_names(target))
                    if isinstance(target, ast.Name):
                        set_assignments.setdefault(target.id, []).append(
                            is_set_expr(child.value)
                        )
                        if isinstance(child.value, ast.Lambda):
                            scope.nested_callables.add(target.id)
            elif isinstance(child, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(child.target, ast.Name):
                    scope.bound_names.add(child.target.id)
            elif isinstance(child, (ast.For, ast.AsyncFor)):
                scope.bound_names.update(_binding_names(child.target))
            elif isinstance(child, (ast.With, ast.AsyncWith)):
                for item in child.items:
                    if item.optional_vars is not None:
                        scope.bound_names.update(
                            _binding_names(item.optional_vars)
                        )
            visit(child, top=False)

    visit(node, top=True)
    scope.set_typed_names = {
        name
        for name, flags in set_assignments.items()
        if flags and all(flags)
    }
    # a name declared global is module state, not a local binding
    scope.bound_names -= scope.global_names
    return scope


def analyze_source(
    source: str, path: str, checkers
) -> list[Finding]:
    """Run ``checkers`` over ``source``; returns raw findings (no
    suppression or baseline filtering — the runner applies those)."""
    tree = ast.parse(source, filename=path)
    ctx = ModuleContext(path, tree, source)
    findings: list[Finding] = []

    def dispatch(node: ast.AST) -> None:
        for checker in checkers:
            result = checker.check(node, ctx)
            if result:
                findings.extend(result)

    def walk(node: ast.AST) -> None:
        dispatch(node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            ctx.function_stack.append(_scan_function_scope(node))
            for child in ast.iter_child_nodes(node):
                walk(child)
            ctx.function_stack.pop()
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            holds_lock = any(ctx.with_item_is_lock(item) for item in node.items)
            for item in node.items:
                walk(item.context_expr)
                if item.optional_vars is not None:
                    walk(item.optional_vars)
            if holds_lock:
                ctx.lock_depth += 1
            for stmt in node.body:
                walk(stmt)
            if holds_lock:
                ctx.lock_depth -= 1
            return
        for child in ast.iter_child_nodes(node):
            walk(child)

    walk(tree)
    findings.sort(key=Finding.sort_key)
    return findings
