"""C-family checker: the lock contract for shared module state.

:mod:`repro.core.cache` set the pattern: a module that declares a
``threading.Lock``/``RLock`` is advertising that its state is shared
with the thread backend, and every mutation of module-level mutable
containers must happen inside ``with <lock>:``.  This checker encodes
that contract so the next cache-like module cannot silently regress it.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Checker

__all__ = ["LockDisciplineChecker"]

#: method names that mutate their receiver in place
_MUTATORS = {
    "append", "extend", "insert",
    "add", "update", "pop", "popitem", "clear",
    "remove", "discard", "setdefault", "move_to_end",
    "appendleft", "extendleft",
}


class LockDisciplineChecker(Checker):
    """C301: unlocked mutation of module-level mutable state.

    Active only in modules that construct a ``threading.Lock`` or
    ``RLock`` somewhere.  Module-level mutable state is any module-scope
    name bound to a mutable literal/constructor (list/dict/set/
    OrderedDict/...).  Inside functions, three mutation shapes are
    flagged when not lexically under a ``with <lock>:`` block:

    * mutator method calls — ``STATE.append(...)``, ``.update(...)``, ...
    * subscript writes/deletes — ``STATE[k] = v``, ``del STATE[k]``
    * rebinding through ``global STATE``

    Module-scope statements are exempt: import-time initialization is
    single-threaded by construction.
    """

    def check(self, node, ctx):
        if not ctx.declares_lock or ctx.current_function is None:
            return []
        if ctx.lock_depth > 0:
            return []
        if isinstance(node, ast.Call):
            return self._check_mutator_call(node, ctx)
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            return self._check_assignment(node, ctx)
        if isinstance(node, ast.Delete):
            findings = []
            for target in node.targets:
                findings.extend(self._check_subscript(target, ctx, "del"))
            return findings
        return []

    # ------------------------------------------------------------------
    def _is_module_state(self, name: str, ctx) -> bool:
        if name not in ctx.module_mutable_names:
            return False
        scope = ctx.current_function
        # a local rebinding shadows the module state — unless the
        # function declared it global, in which case it *is* the state
        if name in scope.global_names:
            return True
        return not ctx.name_is_local(name)

    def _check_mutator_call(self, node: ast.Call, ctx):
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in _MUTATORS:
            return []
        if not isinstance(func.value, ast.Name):
            return []
        name = func.value.id
        if not self._is_module_state(name, ctx):
            return []
        return [ctx.finding(
            "C301", node,
            f"{name}.{func.attr}(...) mutates module-level state outside "
            "`with <lock>:` in a module that declares a threading lock",
        )]

    def _check_assignment(self, node, ctx):
        findings = []
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            findings.extend(self._check_subscript(target, ctx, "assignment"))
            if (
                isinstance(target, ast.Name)
                and target.id in ctx.current_function.global_names
                and target.id in ctx.module_mutable_names
            ):
                findings.append(ctx.finding(
                    "C301", node,
                    f"rebinding global {target.id} outside `with <lock>:` "
                    "in a module that declares a threading lock",
                ))
        return findings

    def _check_subscript(self, target, ctx, how: str):
        if not isinstance(target, ast.Subscript):
            return []
        if not isinstance(target.value, ast.Name):
            return []
        name = target.value.id
        if not self._is_module_state(name, ctx):
            return []
        return [ctx.finding(
            "C301", target,
            f"subscript {how} on module-level {name} outside "
            "`with <lock>:` in a module that declares a threading lock",
        )]
