"""Standalone entry point: ``python -m repro.analysis [paths...]``.

Identical behavior to ``repro lint``, without importing numpy or the
rest of the CLI — the form the CI lint job runs.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.cli import add_lint_arguments, run_lint_command


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="static determinism / picklability / lock-contract "
                    "analysis (see docs/linting.md)",
    )
    add_lint_arguments(parser)
    return run_lint_command(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
