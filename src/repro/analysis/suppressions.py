"""Per-line ``# repro: lint-ignore[RULE-ID]`` suppression comments.

Syntax (on the line where the finding starts)::

    start = time.perf_counter()  # repro: lint-ignore[D103] presentation only
    x = rng()                    # repro: lint-ignore[D101,D102]

A bare ``# repro: lint-ignore`` (no bracket) suppresses every rule on
that line.  Comments are located with :mod:`tokenize`, so the marker
inside a string literal (e.g. an analyzer test fixture) is never
mistaken for a live suppression.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["Suppression", "collect_suppressions"]

_PATTERN = re.compile(
    r"#\s*repro:\s*lint-ignore"      # the marker
    r"(?:\[(?P<ids>[A-Za-z0-9,\s]*)\])?"  # optional [D101,P201]
    r"(?:\s+(?P<reason>.*))?$"       # optional trailing justification
)


@dataclass
class Suppression:
    """One lint-ignore comment.

    ``rule_ids`` is ``None`` for the bare (suppress-everything) form.
    ``used`` is set by the runner when any finding on the line matched.
    """

    line: int
    rule_ids: frozenset[str] | None
    reason: str = ""
    used: bool = field(default=False, compare=False)

    def covers(self, rule_id: str) -> bool:
        # hygiene findings about suppressions are never self-suppressible
        if rule_id == "U901":
            return False
        return self.rule_ids is None or rule_id in self.rule_ids


def collect_suppressions(source: str) -> dict[int, Suppression]:
    """Map line number -> :class:`Suppression` for every comment in
    ``source`` carrying the marker.  Tolerates tokenize errors on
    otherwise-parsable files by falling back to no suppressions."""
    suppressions: dict[int, Suppression] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return suppressions
    for line, text in comments:
        match = _PATTERN.search(text)
        if match is None:
            continue
        ids_text = match.group("ids")
        if ids_text is None:
            rule_ids = None
        else:
            rule_ids = frozenset(
                token.strip() for token in ids_text.split(",") if token.strip()
            )
            if not rule_ids:  # `lint-ignore[]` suppresses nothing
                rule_ids = frozenset()
        suppressions[line] = Suppression(
            line=line,
            rule_ids=rule_ids,
            reason=(match.group("reason") or "").strip(),
        )
    return suppressions
