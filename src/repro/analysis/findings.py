"""The unit of analyzer output: one finding at one source location."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Finding"]


@dataclass
class Finding:
    """One rule violation at one location.

    Attributes
    ----------
    rule:
        Rule identifier (``"D101"``, ``"P201"``, ...).
    path:
        File path, normalized to forward slashes, relative to the lint
        root when the file lives under it.
    line, col:
        1-based line and 0-based column of the offending node.
    message:
        Human-readable description of the violation.
    snippet:
        The stripped source line — the stable, line-number-independent
        part of the finding that baseline matching keys on.
    suppressed:
        Set by the runner when a ``# repro: lint-ignore[...]`` comment
        on the line covers this rule.
    baselined:
        Set by the runner when a committed baseline entry grandfathers
        this finding.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""
    suppressed: bool = field(default=False, compare=False)
    baselined: bool = field(default=False, compare=False)

    @property
    def active(self) -> bool:
        """True when neither suppressed inline nor baselined."""
        return not (self.suppressed or self.baselined)

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "status": (
                "suppressed"
                if self.suppressed
                else "baselined" if self.baselined else "active"
            ),
        }

    def __str__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"{self.location()}: {self.rule} {self.message}"
