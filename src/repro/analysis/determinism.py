"""D-family checkers: the seed contract, wall-clock, and set order.

Grounded in this repo's real invariants: a single integer seed must
reproduce every byte of output across serial/thread/process backends,
restarts, and batch sizes (the PR 3/4 determinism suites).  The three
checkers here flag the static patterns that have historically broken
that contract in ML pipelines.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Checker, dotted_name, is_set_expr
from repro.analysis.rules import is_benchmark_path, is_sanctioned_rng_module

__all__ = ["RngChecker", "WallClockChecker", "UnorderedIterationChecker"]

#: wall-clock reads (resolved dotted names) flagged by D103
_WALL_CLOCK = {
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}


class RngChecker(Checker):
    """D101 (unseeded ``default_rng()``) and D102 (raw RNG surface).

    Outside the sanctioned :mod:`repro.utils.rng` module, *any*
    reference into ``numpy.random`` or the stdlib ``random`` module is
    flagged: RNG construction, seeding, and even type references are
    concentrated in one place so the seed contract has exactly one
    implementation to audit.
    """

    def check(self, node, ctx):
        if is_sanctioned_rng_module(ctx.path):
            return []
        if isinstance(node, ast.Call):
            return self._check_call(node, ctx)
        if isinstance(node, ast.Attribute):
            return self._check_attribute(node, ctx)
        if isinstance(node, ast.ImportFrom):
            return self._check_import_from(node, ctx)
        return []

    def _check_call(self, node: ast.Call, ctx):
        resolved = dotted_name(node.func, ctx.aliases)
        if resolved is None:
            return []
        if resolved.endswith(".default_rng") and self._is_rng_surface(resolved):
            if not node.args and not node.keywords:
                return [ctx.finding(
                    "D101", node,
                    "np.random.default_rng() without a seed draws fresh "
                    "entropy — derive generators from "
                    "repro.utils.rng.check_random_state / spawn_seeds",
                )]
            return [ctx.finding(
                "D102", node,
                f"raw {resolved}(...) — normalize seeds through "
                "repro.utils.rng.check_random_state instead",
            )]
        return []

    def _check_attribute(self, node: ast.Attribute, ctx):
        # only flag the outermost attribute of a chain, and let
        # _check_call own chains that are directly called
        parent = ctx.parent_of(node)
        if isinstance(parent, ast.Attribute):
            return []
        if isinstance(parent, ast.Call) and parent.func is node:
            resolved = dotted_name(node, ctx.aliases)
            if resolved is not None and resolved.endswith(".default_rng") \
                    and self._is_rng_surface(resolved):
                return []  # reported at the Call node
        resolved = dotted_name(node, ctx.aliases)
        if resolved is None or not self._is_rng_surface(resolved):
            return []
        return [ctx.finding(
            "D102", node,
            f"reference to {resolved} outside repro.utils.rng — the RNG "
            "surface (construction, seeding, types) is centralized there",
        )]

    def _check_import_from(self, node: ast.ImportFrom, ctx):
        if node.level or node.module is None:
            return []
        if node.module == "random" or node.module.startswith("numpy.random"):
            return [ctx.finding(
                "D102", node,
                f"import from {node.module} outside repro.utils.rng — "
                "use its helpers (check_random_state, spawn_seeds, "
                "Generator) instead",
            )]
        return []

    @staticmethod
    def _is_rng_surface(resolved: str) -> bool:
        parts = resolved.split(".")
        if parts[0] == "random" and len(parts) >= 2:
            return True
        return parts[:2] == ["numpy", "random"] and len(parts) >= 3


class WallClockChecker(Checker):
    """D103: wall-clock reads outside ``benchmarks/``.

    Benchmarks measure time on purpose (behind
    ``benchmarks/_util.timing_enabled``); anywhere else a clock read
    feeding output must be suppressed with a justification naming the
    opt-out that keeps reports byte-comparable (``timing=False`` /
    ``--no-timing``).
    """

    def check(self, node, ctx):
        if not isinstance(node, ast.Call) or is_benchmark_path(ctx.path):
            return []
        resolved = dotted_name(node.func, ctx.aliases)
        if resolved not in _WALL_CLOCK:
            return []
        return [ctx.finding(
            "D103", node,
            f"wall-clock read {resolved}() outside benchmarks/ — output "
            "derived from it cannot be byte-compared across runs",
        )]


class UnorderedIterationChecker(Checker):
    """D104: set iteration order leaking into results or text.

    Flags iterating a set expression in ``for`` loops and list/dict/
    generator comprehensions, materializing one via ``list``/``tuple``/
    ``enumerate``/``iter``, and formatting one into text (``str.join``,
    f-strings, ``str``/``repr``).  ``sorted(...)`` normalizes the order
    and is the sanctioned spelling, so it is never flagged.
    """

    _MATERIALIZERS = {"list", "tuple", "enumerate", "iter"}
    _FORMATTERS = {"str", "repr"}

    def check(self, node, ctx):
        if isinstance(node, ast.For):
            return self._flag(node.iter, ctx, "iterated by a for loop")
        if isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
            findings = []
            for gen in node.generators:
                findings.extend(
                    self._flag(gen.iter, ctx, "iterated by a comprehension")
                )
            return findings
        if isinstance(node, ast.FormattedValue):
            return self._flag(node.value, ctx, "formatted into an f-string")
        if isinstance(node, ast.Call):
            return self._check_call(node, ctx)
        return []

    def _check_call(self, node: ast.Call, ctx):
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id in (self._MATERIALIZERS | self._FORMATTERS)
            and node.args
        ):
            what = (
                "materialized in order" if func.id in self._MATERIALIZERS
                else "formatted into text"
            )
            return self._flag(node.args[0], ctx, f"{what} by {func.id}()")
        if isinstance(func, ast.Attribute) and func.attr == "join" and node.args:
            return self._flag(node.args[0], ctx, "joined into text")
        return []

    def _flag(self, expr, ctx, how: str):
        if not is_set_expr(expr, ctx):
            return []
        return [ctx.finding(
            "D104", expr,
            f"set with hash-randomized iteration order {how} — "
            "wrap it in sorted(...) first",
        )]
