"""Committed baselines: grandfathered findings that do not gate CI.

A baseline entry matches findings by ``(path, rule, snippet)`` with a
count — deliberately *not* by line number, so unrelated edits that
shift lines never invalidate the baseline, while a new occurrence of
the same pattern in the same file immediately shows up as an active
finding.  Entries carry a ``justification`` string so the file reads
as a reviewed ledger, not a dumping ground.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field

from repro.analysis.findings import Finding

__all__ = ["Baseline", "BaselineEntry"]

_DEFAULT_JUSTIFICATION = "grandfathered at baseline creation"


@dataclass
class BaselineEntry:
    path: str
    rule: str
    snippet: str
    count: int = 1
    justification: str = _DEFAULT_JUSTIFICATION

    def key(self) -> tuple[str, str, str]:
        return (self.path, self.rule, self.snippet)

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "rule": self.rule,
            "snippet": self.snippet,
            "count": self.count,
            "justification": self.justification,
        }


@dataclass
class Baseline:
    """The set of grandfathered findings, loadable/dumpable as JSON."""

    entries: list[BaselineEntry] = field(default_factory=list)
    note: str = ""

    @classmethod
    def load(cls, path) -> "Baseline":
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
        if data.get("version") != 1:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} "
                f"in {path}"
            )
        return cls(
            entries=[
                BaselineEntry(
                    path=entry["path"],
                    rule=entry["rule"],
                    snippet=entry["snippet"],
                    count=int(entry.get("count", 1)),
                    justification=entry.get(
                        "justification", _DEFAULT_JUSTIFICATION
                    ),
                )
                for entry in data.get("entries", [])
            ],
            note=data.get("note", ""),
        )

    def dump(self, path) -> None:
        data = {
            "version": 1,
            "note": self.note,
            "entries": [
                entry.as_dict()
                for entry in sorted(self.entries, key=BaselineEntry.key)
            ],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=2)
            handle.write("\n")

    # ------------------------------------------------------------------
    def apply(self, findings: list[Finding]) -> None:
        """Mark findings covered by an entry as ``baselined`` in place.

        Per ``(path, rule, snippet)`` key, at most ``count`` findings
        are grandfathered (in file order); any excess stays active —
        adding a *second* copy of a baselined pattern is a new finding.
        """
        budget = {entry.key(): entry.count for entry in self.entries}
        for finding in sorted(findings, key=Finding.sort_key):
            key = (finding.path, finding.rule, finding.snippet)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                finding.baselined = True

    @classmethod
    def from_findings(
        cls, findings, *, note: str = "", previous: "Baseline | None" = None
    ) -> "Baseline":
        """Build a baseline grandfathering every finding in ``findings``,
        carrying over justifications from ``previous`` where keys match."""
        kept_justifications = {}
        if previous is not None:
            kept_justifications = {
                entry.key(): entry.justification for entry in previous.entries
            }
        counts = Counter(
            (finding.path, finding.rule, finding.snippet)
            for finding in findings
        )
        entries = [
            BaselineEntry(
                path=path,
                rule=rule,
                snippet=snippet,
                count=count,
                justification=kept_justifications.get(
                    (path, rule, snippet), _DEFAULT_JUSTIFICATION
                ),
            )
            for (path, rule, snippet), count in sorted(counts.items())
        ]
        return cls(
            entries=entries,
            note=note or (previous.note if previous is not None else ""),
        )
