"""Text and JSON renderings of a lint run."""

from __future__ import annotations

import json

from repro.analysis.rules import RULES

__all__ = ["render_text", "render_json"]


def _summary_counts(report) -> dict:
    per_rule: dict[str, int] = {}
    for finding in report.findings:
        per_rule[finding.rule] = per_rule.get(finding.rule, 0) + 1
    return {
        "files": report.n_files,
        "active": len(report.findings),
        "baselined": len(report.baselined),
        "suppressed": len(report.suppressed),
        "per_rule": dict(sorted(per_rule.items())),
    }


def render_text(report, *, verbose: bool = False) -> str:
    """One line per active finding plus a summary tail.

    ``verbose`` additionally lists baselined findings (marked) so a
    human can audit what the baseline is absorbing.
    """
    lines = []
    for finding in report.findings:
        lines.append(
            f"{finding.location()}: {finding.rule} "
            f"[{RULES[finding.rule].name}] {finding.message}"
        )
    if verbose:
        for finding in report.baselined:
            lines.append(
                f"{finding.location()}: {finding.rule} (baselined) "
                f"{finding.message}"
            )
    counts = _summary_counts(report)
    lines.append(
        f"{counts['active']} finding(s) in {counts['files']} file(s) "
        f"({counts['baselined']} baselined, "
        f"{counts['suppressed']} suppressed)"
    )
    return "\n".join(lines)


def render_json(report) -> str:
    """Machine-readable report (the CI artifact format)."""
    data = {
        "version": 1,
        "summary": _summary_counts(report),
        "findings": [f.as_dict() for f in report.findings],
        "baselined": [f.as_dict() for f in report.baselined],
        "suppressed": [f.as_dict() for f in report.suppressed],
        "rules": {
            rule.id: {
                "name": rule.name,
                "family": rule.family,
                "summary": rule.summary,
            }
            for rule in sorted(RULES.values(), key=lambda r: r.id)
        },
    }
    return json.dumps(data, indent=2) + "\n"
