"""P-family checker: picklability of tasks handed to the executors.

The process backend (:class:`repro.core.executor.ProcessExecutor`)
pickles every task function and item to ship them to workers.  Lambdas
and functions defined inside other functions cannot be pickled, so code
passing them to ``map``/``imap``/``map_seeded`` works with the serial
and thread backends and explodes only under ``--backend process`` —
exactly the class of latent failure PR 3 scrubbed out of the library
(``ModelOutputFn`` exists because of it).
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Checker

__all__ = ["PicklabilityChecker"]


class PicklabilityChecker(Checker):
    """P201: lambda / nested function passed to an executor map.

    Matches any ``<receiver>.map(...)``, ``.imap(...)`` or
    ``.map_seeded(...)`` call — the executor protocol's entry points —
    and flags arguments that are lambdas, names bound to lambdas, or
    names of functions defined inside the enclosing function.  Bound
    methods and module-level functions pickle fine and pass clean.
    """

    _MAP_METHODS = {"map", "imap", "map_seeded"}

    def check(self, node, ctx):
        if not isinstance(node, ast.Call):
            return []
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in self._MAP_METHODS:
            return []
        findings = []
        arguments = list(node.args) + [kw.value for kw in node.keywords]
        for arg in arguments:
            if isinstance(arg, ast.Lambda):
                findings.append(ctx.finding(
                    "P201", arg,
                    f"lambda passed to .{func.attr}() cannot be pickled — "
                    "the process backend ships tasks to workers; use a "
                    "module-level function or functools.partial",
                ))
            elif isinstance(arg, ast.Name) and ctx.name_is_nested_callable(arg.id):
                findings.append(ctx.finding(
                    "P201", arg,
                    f"nested function {arg.id!r} passed to .{func.attr}() "
                    "cannot be pickled — the process backend ships tasks "
                    "to workers; hoist it to module level or use a "
                    "picklable callable class",
                ))
        return findings
