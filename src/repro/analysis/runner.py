"""Drive the analyzer over files and trees; apply suppressions and
baselines; decide the gate."""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.analysis.baseline import Baseline
from repro.analysis.concurrency import LockDisciplineChecker
from repro.analysis.determinism import (
    RngChecker,
    UnorderedIterationChecker,
    WallClockChecker,
)
from repro.analysis.engine import analyze_source
from repro.analysis.findings import Finding
from repro.analysis.parallel import PicklabilityChecker
from repro.analysis.suppressions import collect_suppressions

__all__ = ["LintReport", "default_checkers", "lint_source", "run_lint"]


def default_checkers():
    """One fresh instance of every shipped checker."""
    return [
        RngChecker(),
        WallClockChecker(),
        UnorderedIterationChecker(),
        PicklabilityChecker(),
        LockDisciplineChecker(),
    ]


@dataclass
class LintReport:
    """The outcome of one lint run.

    ``findings`` holds active findings only; suppressed and baselined
    ones are kept separately so reporters can show the full picture.
    """

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    n_files: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def gate_failures(self, gate_prefixes=None) -> list[Finding]:
        """Active findings under the gated path prefixes (all active
        findings when ``gate_prefixes`` is None)."""
        if gate_prefixes is None:
            return list(self.findings)
        prefixes = [p.rstrip("/").replace(os.sep, "/") for p in gate_prefixes]
        return [
            finding
            for finding in self.findings
            if any(
                finding.path == p or finding.path.startswith(p + "/")
                for p in prefixes
            )
        ]


def _lint_one(source: str, path: str, checkers) -> tuple[list[Finding], list[Finding]]:
    """Analyze one module; returns ``(findings, unused-suppression
    findings)`` with inline suppressions already applied."""
    try:
        raw = analyze_source(source, path, checkers)
    except SyntaxError as exc:
        return (
            [Finding(
                rule="E999",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}",
            )],
            [],
        )
    suppressions = collect_suppressions(source)
    for finding in raw:
        suppression = suppressions.get(finding.line)
        if suppression is not None and suppression.covers(finding.rule):
            finding.suppressed = True
            suppression.used = True
    unused = [
        Finding(
            rule="U901",
            path=path,
            line=suppression.line,
            col=0,
            message=(
                "lint-ignore comment suppresses nothing on this line — "
                "remove it"
            ),
            snippet=(
                source.splitlines()[suppression.line - 1].strip()
                if suppression.line <= len(source.splitlines())
                else ""
            ),
        )
        for suppression in suppressions.values()
        if not suppression.used
    ]
    return raw, unused


def _iter_python_files(paths):
    """Yield ``(file path, display root)`` for every ``.py`` under
    ``paths``, files sorted for deterministic report order."""
    files = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [
                    d for d in dirnames
                    if d not in ("__pycache__", ".git")
                ]
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        files.append(os.path.join(dirpath, filename))
        elif path.endswith(".py"):
            files.append(path)
        else:
            raise FileNotFoundError(
                f"lint target {path!r} is neither a directory nor a .py file"
            )
    return sorted(dict.fromkeys(files))


def _display_path(file_path: str, root: str | None) -> str:
    if root is not None:
        try:
            relative = os.path.relpath(file_path, root)
        except ValueError:  # different drive (windows)
            relative = file_path
        if not relative.startswith(".."):
            file_path = relative
    return file_path.replace(os.sep, "/")


def lint_source(source: str, path: str = "<string>") -> LintReport:
    """Analyze one in-memory module — the fixture-test entry point."""
    findings, unused = _lint_one(source, path, default_checkers())
    findings += unused
    findings.sort(key=Finding.sort_key)
    return LintReport(
        findings=[f for f in findings if f.active],
        suppressed=[f for f in findings if f.suppressed],
        baselined=[],
        n_files=1,
    )


def run_lint(
    paths,
    *,
    baseline: Baseline | None = None,
    root: str | None = None,
) -> LintReport:
    """Lint every ``.py`` file under ``paths``.

    Parameters
    ----------
    paths:
        Files or directory trees to analyze.
    baseline:
        Optional committed :class:`Baseline`; matching findings are
        demoted to ``baselined`` and do not gate.
    root:
        Directory findings' paths are reported relative to (default:
        the current working directory) — baseline entries must use the
        same convention.
    """
    if root is None:
        root = os.getcwd()
    all_findings: list[Finding] = []
    n_files = 0
    for file_path in _iter_python_files(paths):
        with open(file_path, encoding="utf-8") as handle:
            source = handle.read()
        display = _display_path(file_path, root)
        findings, unused = _lint_one(source, display, default_checkers())
        all_findings.extend(findings)
        all_findings.extend(unused)
        n_files += 1
    if baseline is not None:
        baseline.apply([f for f in all_findings if not f.suppressed])
    all_findings.sort(key=Finding.sort_key)
    return LintReport(
        findings=[f for f in all_findings if f.active],
        suppressed=[f for f in all_findings if f.suppressed],
        baselined=[f for f in all_findings if f.baselined],
        n_files=n_files,
    )
