"""Rule-based static analysis for the repo's reproducibility contracts.

``repro.analysis`` is an AST linter purpose-built for this library's
three machine-checkable invariants:

* **determinism** (D-rules) — every stochastic or time-dependent value
  must flow from one integer seed through :mod:`repro.utils.rng`, and
  no unordered container may feed iteration order into results;
* **picklability** (P-rules) — tasks handed to
  :mod:`repro.core.executor` must survive the process backend's pickle
  round-trip;
* **lock discipline** (C-rules) — modules declaring a
  ``threading.Lock`` must mutate their shared module-level state only
  under it (the :mod:`repro.core.cache` contract).

Run it as ``repro lint src`` (see ``docs/linting.md``), embed it via
:func:`run_lint`, or test single snippets with :func:`lint_source`.
Findings can be silenced per line with
``# repro: lint-ignore[RULE-ID] reason`` or grandfathered in a
committed :class:`Baseline` file.

The package is dependency-free (stdlib ``ast``/``tokenize`` only), so
the lint gate runs before any scientific stack is importable.
"""

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.findings import Finding
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules import RULES, Rule, all_rules, get_rule
from repro.analysis.runner import (
    LintReport,
    default_checkers,
    lint_source,
    run_lint,
)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintReport",
    "RULES",
    "Rule",
    "all_rules",
    "default_checkers",
    "get_rule",
    "lint_source",
    "render_json",
    "render_text",
    "run_lint",
]
