"""The rule registry: every shipped rule, its family, and its rationale.

Rule identifiers are grouped into families that mirror the invariants
this library actually enforces dynamically (goldens, determinism
suites, hypothesis properties):

* ``D`` — determinism: one integer seed must reproduce every byte of
  output, so RNG construction is centralized in :mod:`repro.utils.rng`,
  wall-clock reads stay out of report-producing code, and unordered
  containers never feed iteration order into results or text.
* ``P`` — parallel/picklability: tasks handed to the executors in
  :mod:`repro.core.executor` must survive a trip through ``pickle``
  (the process backend ships them to workers), which lambdas and
  nested functions never do.
* ``C`` — concurrency: a module that declares a ``threading.Lock``
  advertises that its module-level mutable state is shared; mutating
  that state outside a ``with <lock>:`` block breaks the contract
  (:mod:`repro.core.cache` is the reference implementation).
* ``U`` — analyzer hygiene (unused suppressions).

Checkers register their rules here so reporters, documentation, and the
CLI share one catalog.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import PurePath

__all__ = ["Rule", "RULES", "register_rule", "get_rule", "all_rules"]


@dataclass(frozen=True)
class Rule:
    """Metadata for one rule ID.

    Attributes
    ----------
    id:
        Short identifier used in findings, suppressions and baselines.
    name:
        kebab-case slug.
    family:
        ``"determinism"``, ``"parallel"``, ``"concurrency"`` or
        ``"hygiene"``.
    summary:
        One-line description of what the rule flags.
    rationale:
        Why violating it breaks a repo invariant.
    """

    id: str
    name: str
    family: str
    summary: str
    rationale: str


RULES: dict[str, Rule] = {}


def register_rule(rule: Rule) -> Rule:
    """Add ``rule`` to the registry (idempotent for identical rules)."""
    existing = RULES.get(rule.id)
    if existing is not None and existing != rule:
        raise ValueError(f"conflicting registration for rule {rule.id}")
    RULES[rule.id] = rule
    return rule


def get_rule(rule_id: str) -> Rule:
    if rule_id not in RULES:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {', '.join(sorted(RULES))}"
        )
    return RULES[rule_id]


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by ID."""
    return [RULES[k] for k in sorted(RULES)]


# ----------------------------------------------------------------------
# path-based exemptions
# ----------------------------------------------------------------------
def path_parts(path: str) -> tuple[str, ...]:
    return PurePath(path.replace("\\", "/")).parts


def is_sanctioned_rng_module(path: str) -> bool:
    """``repro/utils/rng.py`` is the one module allowed to spell
    ``numpy.random`` — it exists to wrap it."""
    return path_parts(path)[-3:] == ("repro", "utils", "rng.py")


def is_benchmark_path(path: str) -> bool:
    """``benchmarks/`` measures wall-clock time on purpose; the shared
    ``benchmarks/_util.timing_enabled`` guard keeps its asserts honest."""
    return "benchmarks" in path_parts(path)


# ----------------------------------------------------------------------
# the shipped catalog
# ----------------------------------------------------------------------
D101 = register_rule(Rule(
    id="D101",
    name="unseeded-default-rng",
    family="determinism",
    summary="np.random.default_rng() called without a seed",
    rationale=(
        "A fresh-entropy generator makes the run irreproducible; derive "
        "generators from repro.utils.rng.check_random_state / spawn_seeds "
        "so one integer seed reproduces every byte of output."
    ),
))

D102 = register_rule(Rule(
    id="D102",
    name="raw-rng-surface",
    family="determinism",
    summary=(
        "numpy.random / stdlib random referenced outside repro.utils.rng"
    ),
    rationale=(
        "All RNG plumbing is centralized in repro.utils.rng (seed "
        "normalization, picklable child seeds, re-exported Generator "
        "type); raw references reintroduce shared global state and "
        "backend-dependent streams."
    ),
))

D103 = register_rule(Rule(
    id="D103",
    name="wall-clock",
    family="determinism",
    summary=(
        "wall-clock read (time.*, datetime.now, ...) outside benchmarks/"
    ),
    rationale=(
        "Reports must be byte-identical across runs and backends; timing "
        "belongs in benchmarks/ behind the _util.timing_enabled guard, or "
        "must feed only opt-out presentation columns (timing=False / "
        "--no-timing)."
    ),
))

D104 = register_rule(Rule(
    id="D104",
    name="unordered-iteration",
    family="determinism",
    summary="set iteration order leaks into results or report text",
    rationale=(
        "Set iteration order depends on hash randomization "
        "(PYTHONHASHSEED); sort first (sorted(...)) before iterating "
        "into lists, text, or return values."
    ),
))

P201 = register_rule(Rule(
    id="P201",
    name="unpicklable-task",
    family="parallel",
    summary=(
        "lambda or nested function passed to executor map/imap/map_seeded"
    ),
    rationale=(
        "The process backend pickles tasks to ship them to workers; "
        "lambdas and nested functions cannot be pickled, so the code "
        "works serially and explodes under --backend process. Use "
        "module-level functions, functools.partial, or picklable "
        "callable classes (see ModelOutputFn)."
    ),
))

C301 = register_rule(Rule(
    id="C301",
    name="unlocked-global-mutation",
    family="concurrency",
    summary=(
        "module-level mutable state mutated outside `with <lock>:` in a "
        "module that declares a threading.Lock"
    ),
    rationale=(
        "Declaring a lock advertises that the module's state is shared "
        "across threads (the repro.core.cache contract); mutations that "
        "bypass the lock race with the thread backend."
    ),
))

U901 = register_rule(Rule(
    id="U901",
    name="unused-suppression",
    family="hygiene",
    summary="lint-ignore comment that suppresses nothing",
    rationale=(
        "Stale suppressions hide future regressions at that line; delete "
        "them once the finding they covered is gone."
    ),
))
