"""``ChaosPolicy`` — composable, seeded fault injection.

Every injection decision is a pure function of ``(policy seed, site,
fault position, coordinate)`` through
:func:`repro.utils.rng.derive_seed`: whether fault ``k`` fires at task
ordinal ``i`` does not depend on the backend, the worker count, how
many retries other tasks needed, or which other faults are configured.
That determinism is what lets the chaos tests pin byte-identical
recovery goldens.

Two injection sites exist today:

* ``"task"`` — consulted by the worker-side guard of
  :class:`repro.resilience.ResilientExecutor` before every task
  attempt.  Kinds: ``"crash"`` (raises
  :class:`InjectedWorkerCrash`), ``"hang"`` (sleeps
  ``hang_seconds`` — pair with a ``task_timeout``), ``"transient"``
  (raises :class:`InjectedTransientError`), and ``"pool-break"``
  (raises :class:`InjectedPoolBreak`, a
  :class:`concurrent.futures.BrokenExecutor`, which the resilience
  layer treats as a pool incident: rebuild, then degrade).
* ``"stream"`` — consulted by :meth:`ChaosPolicy.corrupt_stream` per
  batch ordinal.  Kind: ``"corrupt-batch"`` (non-binary SLA labels,
  tripping the engine's ``labels-not-binary`` check).

A fault's ``attempts`` bounds how many consecutive attempts of one
task it poisons: ``attempts=1`` is a transient blip the first retry
clears; ``attempts`` larger than the executor's retry budget is a
permanent fault that must surface as a named error.
"""

from __future__ import annotations

import time
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, replace

import numpy as np

from repro.utils.rng import check_random_state, derive_seed

__all__ = [
    "FAULT_KINDS",
    "ChaosFault",
    "ChaosPolicy",
    "InjectedPoolBreak",
    "InjectedTransientError",
    "InjectedWorkerCrash",
]

#: Every fault kind :class:`ChaosFault` accepts.
FAULT_KINDS = ("crash", "hang", "transient", "pool-break", "corrupt-batch")

#: Site → coordinate code for :func:`repro.utils.rng.derive_seed`.
_SITES = {"task": 0, "stream": 1}


class InjectedWorkerCrash(RuntimeError):
    """A chaos-injected worker crash (the task dies mid-flight)."""


class InjectedTransientError(RuntimeError):
    """A chaos-injected transient failure (clears after a few retries)."""


class InjectedPoolBreak(BrokenExecutor):
    """A chaos-injected pool collapse (classified as a pool incident)."""


@dataclass(frozen=True)
class ChaosFault:
    """One fault class with an independent firing rate.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    rate:
        Per-site-visit firing probability in ``[0, 1]``.
    attempts:
        For ``"task"``-site kinds: the fault poisons attempts
        ``0 .. attempts-1`` of an afflicted task, then clears.
        Ignored for ``"corrupt-batch"``.
    """

    kind: str
    rate: float
    attempts: int = 1

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from "
                f"{', '.join(FAULT_KINDS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")


class ChaosPolicy:
    """A seeded, picklable bundle of :class:`ChaosFault` declarations.

    Picklability matters: the policy travels to process-pool workers
    inside the resilience layer's task guard, so it must cross the
    boundary like any other task payload.
    """

    def __init__(self, seed: int, faults=(), *, hang_seconds: float = 0.05):
        if not isinstance(seed, (int, np.integer)) or seed < 0:
            raise ValueError(f"seed must be a non-negative int, got {seed!r}")
        if hang_seconds <= 0:
            raise ValueError(
                f"hang_seconds must be positive, got {hang_seconds}"
            )
        self.seed = int(seed)
        self.faults = tuple(faults)
        for fault in self.faults:
            if not isinstance(fault, ChaosFault):
                raise TypeError(
                    f"faults must be ChaosFault instances, got "
                    f"{type(fault).__name__}"
                )
        self.hang_seconds = float(hang_seconds)

    def draw(self, site: str, index: int, attempt: int = 0) -> str | None:
        """Which fault kind (if any) fires at ``(site, index, attempt)``.

        Faults are consulted in declaration order; the first that fires
        wins.  The firing decision per fault depends only on ``(seed,
        site, fault position, index)`` — ``attempt`` only gates whether
        an afflicted task is still within the fault's poisoned window.
        """
        try:
            code = _SITES[site]
        except KeyError:
            raise ValueError(
                f"unknown chaos site {site!r}; choose from "
                f"{', '.join(sorted(_SITES))}"
            ) from None
        for k, fault in enumerate(self.faults):
            stream_fault = fault.kind == "corrupt-batch"
            if stream_fault != (site == "stream"):
                continue
            if site == "task" and attempt >= fault.attempts:
                continue
            rng = check_random_state(derive_seed(self.seed, code, k, index))
            if float(rng.random()) < fault.rate:
                return fault.kind
        return None

    def before_task(self, ordinal: int, attempt: int) -> None:
        """Executor-side injection hook (runs inside the worker)."""
        kind = self.draw("task", ordinal, attempt)
        if kind is None:
            return
        if kind == "crash":
            raise InjectedWorkerCrash(
                f"injected worker crash at task {ordinal} attempt {attempt}"
            )
        if kind == "transient":
            raise InjectedTransientError(
                f"injected transient fault at task {ordinal} "
                f"attempt {attempt}"
            )
        if kind == "pool-break":
            raise InjectedPoolBreak(
                f"injected pool collapse at task {ordinal} attempt {attempt}"
            )
        if kind == "hang":
            time.sleep(self.hang_seconds)

    def corrupt_stream(self, stream, *, mode: str = "duplicate"):
        """Yield ``stream`` with corrupted batches injected.

        ``mode="duplicate"`` *prepends* a corrupted copy before each
        afflicted batch — no telemetry is lost, so an engine running
        the skip-and-record malformed policy produces a report
        byte-identical to the clean stream's.  ``mode="replace"``
        substitutes the corrupted copy for the real batch — telemetry
        *is* lost, the recoverable contract is unsatisfiable, and a
        fail-fast engine surfaces one named ``MalformedBatchError``.
        """
        if mode not in ("duplicate", "replace"):
            raise ValueError(
                f"mode must be 'duplicate' or 'replace', got {mode!r}"
            )
        for i, batch in enumerate(stream):
            kind = self.draw("stream", i)
            if kind == "corrupt-batch" and batch.n_epochs > 0:
                bad_labels = np.array(batch.sla_violation, copy=True)
                bad_labels[0] = 7  # trips the labels-not-binary check
                corrupted = replace(batch, sla_violation=bad_labels)
                yield corrupted
                if mode == "replace":
                    continue
            yield batch

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        kinds = ",".join(f.kind for f in self.faults) or "none"
        return f"ChaosPolicy(seed={self.seed}, faults=[{kinds}])"
