"""Seeded fault injection for the diagnosis stack itself.

:mod:`repro.nfv.faults` injects faults into the *simulated network*;
this package injects them into the *diagnosis system* — worker
crashes, hangs, transient exceptions, broken pools, and corrupted
telemetry batches — at deterministic, seed-addressed points, so that
the resilience layer's recovery behaviour is itself a reproducible
experiment.  :class:`ChaosPolicy` composes :class:`ChaosFault`
declarations; ``repro chaos run`` drives a full chaos-vs-clean twin
run and byte-compares the reports (the chaos invariant, end to end).
"""

from repro.chaos.policy import (
    FAULT_KINDS,
    ChaosFault,
    ChaosPolicy,
    InjectedPoolBreak,
    InjectedTransientError,
    InjectedWorkerCrash,
)

__all__ = [
    "FAULT_KINDS",
    "ChaosFault",
    "ChaosPolicy",
    "InjectedPoolBreak",
    "InjectedTransientError",
    "InjectedWorkerCrash",
]
