"""Capacity advisor: counterfactuals and PDP as actionable guidance.

Beyond "which VNF is to blame", an operator wants "what do I change?".
This example turns explanations into actions:

1. a latency regression model + partial dependence shows how predicted
   violation risk responds to the bottleneck VNF's utilization;
2. counterfactual search finds the smallest telemetry change that
   clears a predicted violation — restricted to signals an operator
   can actually influence (utilizations, not time of day).

Run:
    python examples/capacity_advisor.py
"""

import numpy as np

from repro.core.explainers import (
    CounterfactualExplainer,
    PartialDependence,
    model_output_fn,
)
from repro.datasets import make_sla_violation_dataset
from repro.ml import RandomForestClassifier
from repro.ml.model_selection import train_test_split


def main() -> None:
    dataset = make_sla_violation_dataset(n_epochs=3000, random_state=17)
    X_train, X_test, y_train, y_test = train_test_split(
        dataset.X.values, dataset.y, test_size=0.3, random_state=0,
        stratify=dataset.y,
    )
    model = RandomForestClassifier(
        n_estimators=60, max_depth=10, random_state=0
    ).fit(X_train, y_train)
    fn = model_output_fn(model)
    names = dataset.feature_names

    # ------------------------------------------------------------------
    # 1. partial dependence of violation risk on the DPI's utilization
    # ------------------------------------------------------------------
    pdp = PartialDependence(fn, X_train, names)
    for feature in ("vnf4_dpi_cpu_util", "vnf2_ids_queue_ms", "offered_kpps"):
        result = pdp.compute(feature, grid_size=12)
        lo, hi = result.average[0], result.average[-1]
        print(f"risk vs {feature:<24} "
              f"{lo:.2f} -> {hi:.2f}  (slope {result.slope:+.3f})")

    # ------------------------------------------------------------------
    # 2. counterfactual repair hints for predicted violations
    # ------------------------------------------------------------------
    mutable = [
        n for n in names
        if n.endswith(("cpu_util", "mem_util", "queue_ms", "host_pressure"))
    ]
    advisor = CounterfactualExplainer(
        fn, X_train, names,
        threshold=0.5, target="below", max_changes=3,
        mutable_features=mutable,
    )

    risk = fn(X_test)
    alerts = np.flatnonzero(risk >= 0.8)[:5]
    print(f"\nrepair hints for {len(alerts)} high-risk epochs:")
    for row in alerts:
        cf = advisor.explain(X_test[row])
        print(f"  risk {cf.prediction_original:.2f} -> "
              f"{cf.prediction_counterfactual:.2f} | {cf.summary()}")


if __name__ == "__main__":
    main()
