"""Estimator comparison: four roads to the same Shapley values.

The library ships four Shapley estimators (exact enumeration, kernel
regression, permutation sampling, interventional tree traversal) plus
the gradient-based Integrated Gradients for neural models.  This
example explains the *same* NFV incident with all of them and shows
where they agree, what each costs, and how the MLP's IG attribution
relates to the forest's SHAP values.

Run:
    python examples/estimator_comparison.py
"""

import time

import numpy as np

from repro.core.evaluation import spearman_correlation
from repro.core.explainers import (
    IntegratedGradientsExplainer,
    InterventionalTreeShapExplainer,
    KernelShapExplainer,
    SamplingShapleyExplainer,
    TreeShapExplainer,
    model_output_fn,
)
from repro.datasets import make_sla_violation_dataset
from repro.ml import MLPClassifier, RandomForestClassifier, StandardScaler
from repro.ml.model_selection import train_test_split


def main() -> None:
    dataset = make_sla_violation_dataset(n_epochs=3000, random_state=29)
    X_train, X_test, y_train, y_test = train_test_split(
        dataset.X.values, dataset.y, test_size=0.3, random_state=0,
        stratify=dataset.y,
    )
    names = dataset.feature_names
    forest = RandomForestClassifier(
        n_estimators=40, max_depth=8, random_state=0
    ).fit(X_train, y_train)
    fn = model_output_fn(forest)
    background = X_train[:30]

    incident = X_test[np.argmax(fn(X_test))]

    explainers = {
        "tree_shap (path-dep)": TreeShapExplainer(
            forest, names, class_index=1
        ),
        "tree_shap (interv.)": InterventionalTreeShapExplainer(
            forest, background, names, class_index=1
        ),
        "kernel_shap": KernelShapExplainer(
            fn, background, names, n_samples=512, random_state=0
        ),
        "sampling_shapley": SamplingShapleyExplainer(
            fn, background, names, n_permutations=16, random_state=0
        ),
    }

    print(f"{'estimator':<22} {'time':>8}  top-3 signals")
    attributions = {}
    for name, explainer in explainers.items():
        start = time.perf_counter()
        e = explainer.explain(incident)
        elapsed = time.perf_counter() - start
        attributions[name] = e.values
        top = ", ".join(f"{n}" for n, _ in e.top_features(3))
        print(f"{name:<22} {elapsed * 1000:>6.0f}ms  {top}")

    reference = attributions["tree_shap (interv.)"]
    print("\nSpearman rank agreement vs interventional TreeSHAP:")
    for name, values in attributions.items():
        rho = spearman_correlation(values, reference)
        print(f"  {name:<22} {rho:.3f}")

    # ------------------------------------------------------------------
    # gradient-based attribution for a neural model of the same task
    # ------------------------------------------------------------------
    scaler = StandardScaler().fit(X_train)
    mlp = MLPClassifier(
        hidden_layer_sizes=(64, 32), max_epochs=60, random_state=0
    ).fit(scaler.transform(X_train), y_train)
    print(f"\nMLP test accuracy: "
          f"{mlp.score(scaler.transform(X_test), y_test):.3f}")
    ig = IntegratedGradientsExplainer(
        mlp, background=scaler.transform(X_train), feature_names=names,
        n_steps=128, class_index=1,
    )
    e_ig = ig.explain(scaler.transform(incident.reshape(1, -1))[0])
    print("integrated gradients (logit) top-5 for the same incident:")
    for feature, value in e_ig.top_features(5):
        print(f"  {feature:<34} {value:+.4f}")
    rho = spearman_correlation(e_ig.values, reference)
    print(f"IG vs interventional TreeSHAP rank agreement: {rho:.3f} "
          f"(different model families — moderate agreement expected)")


if __name__ == "__main__":
    main()
