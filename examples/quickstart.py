"""Quickstart: simulate an NFV deployment, train a violation predictor,
and explain one prediction.

Run:
    python examples/quickstart.py
"""

import numpy as np

from repro.core import NFVExplainabilityPipeline
from repro.datasets import make_sla_violation_dataset
from repro.ml import RandomForestClassifier


def main() -> None:
    # 1. Generate labelled telemetry from the built-in testbed: a
    #    5-VNF security chain (firewall -> nat -> ids -> lb -> dpi) on a
    #    leaf-spine fabric, with diurnal traffic, flash crowds, noisy
    #    neighbours, and injected faults.
    print("simulating 3000 epochs of NFV telemetry ...")
    dataset = make_sla_violation_dataset(n_epochs=3000, random_state=7)
    print(f"  {dataset.result.summary()}")
    print(f"  features: {dataset.X.n_features} named telemetry signals")

    # 2. Train a predictor and attach an explainer (auto = TreeSHAP for
    #    tree models).
    pipeline = NFVExplainabilityPipeline(
        RandomForestClassifier(n_estimators=60, max_depth=10, random_state=0),
        explainer_method="auto",
        random_state=0,
    ).fit(dataset)
    print(f"\nmodel accuracy: train={pipeline.train_score_:.3f} "
          f"test={pipeline.test_score_:.3f}")

    # 3. Pick a violating epoch and produce the operator report.
    violations = np.flatnonzero(dataset.y == 1)
    x = dataset.X.values[violations[0]]
    print()
    print(pipeline.report(x))

    # 4. Fleet triage: diagnose a whole batch of violations in one
    #    vectorized pass (shared coalition design + background
    #    evaluation — see docs/explainers.md).
    fleet = dataset.X.values[violations[:10]]
    print("\nfleet triage (diagnose_batch over 10 violations):")
    for epoch, diagnosis in zip(violations[:10], pipeline.diagnose_batch(fleet)):
        print(f"  epoch {epoch:>5}: p={diagnosis.prediction:.2f} "
              f"suspect=vnf{diagnosis.primary_suspect} "
              f"resource={diagnosis.primary_resource}")

    # 5. Dataset-level view: which signals drive violations overall?
    from repro.core.report import format_global_report

    print()
    print(format_global_report(pipeline.global_importance(max_rows=100)))


if __name__ == "__main__":
    main()
