"""Root-cause localization: do attributions find the faulty VNF?

The fault injector plants ground-truth faults (memory leaks, config
errors, noisy neighbours).  We aggregate each incident's SHAP values
per VNF, rank the VNFs, and measure hit@k against the injected culprit
— compared against a random ranking and the operator heuristic of
"blame the VNF with the highest CPU".

Run:
    python examples/root_cause_analysis.py
"""

import numpy as np

from repro.core import RootCauseEvaluator
from repro.core.explainers import TreeShapExplainer
from repro.datasets import make_root_cause_dataset, make_sla_violation_dataset
from repro.ml import RandomForestClassifier


def main() -> None:
    seed = 23
    print("simulating fault-rich telemetry ...")
    rc = make_root_cause_dataset(n_epochs=6000, random_state=seed)
    sla = make_sla_violation_dataset(n_epochs=6000, random_state=seed)

    model = RandomForestClassifier(
        n_estimators=60, max_depth=10, random_state=0
    ).fit(sla.X.values, sla.y)

    # collect incidents whose ground-truth culprit VNF is known
    incidents, culprits, kinds = [], [], []
    for i in range(len(rc.y)):
        cs = rc.culprits_for_sample(i)
        if cs:
            incidents.append(rc.X.values[i])
            culprits.append(cs)
            kinds.append(rc.y[i])
    incidents = np.asarray(incidents)
    print(f"  {len(incidents)} incidents with VNF-level ground truth")

    explainer = TreeShapExplainer(model, rc.feature_names, class_index=1)
    evaluator = RootCauseEvaluator(n_vnfs=5, ks=(1, 2, 3))

    print("\nlocalization accuracy (higher is better):")
    for report in (
        evaluator.evaluate_explainer(explainer, incidents, culprits),
        evaluator.utilization_baseline(
            incidents, culprits, rc.feature_names
        ),
        evaluator.random_baseline(culprits, random_state=0),
    ):
        print(f"  {report}")

    # per-fault-kind breakdown for the SHAP ranking
    print("\nper-fault-kind hit@1 (tree_shap):")
    for kind in sorted(set(kinds)):
        rows = [i for i, k in enumerate(kinds) if k == kind]
        if len(rows) < 3:
            continue
        report = evaluator.evaluate_explainer(
            explainer, incidents[rows], [culprits[i] for i in rows]
        )
        print(f"  {kind:<16} hit@1={report.hits[1]:.2f} "
              f"({report.n_incidents} incidents)")


if __name__ == "__main__":
    main()
