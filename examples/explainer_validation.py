"""Explainer validation on ground-truth synthetic problems.

Before trusting explanations on NFV telemetry, verify the explainers on
problems where the right answer is *known*:

* linear data — closed-form Shapley values;
* interaction data — credit must flow to interacting features that
  marginal statistics cannot see;
* sparse data — noise features must receive ~zero attribution.

Run:
    python examples/explainer_validation.py
"""

import numpy as np

from repro.core.evaluation import check_dummy, check_efficiency
from repro.core.explainers import (
    ExactShapleyExplainer,
    KernelShapExplainer,
    LimeExplainer,
    TreeShapExplainer,
    model_output_fn,
)
from repro.datasets import (
    make_interaction_regression,
    make_linear_regression,
    make_sparse_classification,
)
from repro.ml import LinearRegression, RandomForestClassifier, RandomForestRegressor


def main() -> None:
    # ------------------------------------------------------------------
    # 1. linear ground truth: every Shapley method must match phi_i =
    #    w_i (x_i - mean_i)
    # ------------------------------------------------------------------
    X, y, coef = make_linear_regression(
        n_samples=400, coefficients=(3.0, -2.0, 1.0, 0.0, 0.0),
        noise=0.01, random_state=0,
    )
    model = LinearRegression().fit(X.values, y)
    fn = model_output_fn(model)
    background = X.values[:60]
    x = X.values[7]
    truth = model.coef_ * (x - background.mean(axis=0))

    print("linear ground truth (max |error| to closed form):")
    for name, explainer in (
        ("exact_shapley", ExactShapleyExplainer(fn, background)),
        ("kernel_shap", KernelShapExplainer(fn, background, n_samples=512,
                                            random_state=0)),
        ("lime", LimeExplainer(fn, X.values, n_samples=800, alpha=1e-6,
                               random_state=0)),
    ):
        e = explainer.explain(x)
        err = float(np.abs(e.values - truth).max())
        eff = check_efficiency(e, atol=1e-6)
        print(f"  {name:<14} error={err:.4f}  efficiency gap={eff['gap']:.2e}")

    # ------------------------------------------------------------------
    # 2. interaction: x0*x1 — SHAP credits both, marginal stats see none
    # ------------------------------------------------------------------
    Xi, yi = make_interaction_regression(
        n_samples=800, n_noise_features=3, random_state=1
    )
    forest = RandomForestRegressor(
        n_estimators=40, max_depth=8, random_state=0
    ).fit(Xi.values, yi)
    tree_shap = TreeShapExplainer(forest, Xi.feature_names)
    gi = tree_shap.global_importance(Xi.values[:100])
    print("\ninteraction problem y = 2*x0*x1 + x2 (+3 noise features):")
    marginal = [abs(np.corrcoef(Xi.values[:, j], yi)[0, 1]) for j in range(3)]
    print(f"  marginal |corr| of x0 with y: {marginal[0]:.3f} (blind to x0)")
    for name, score in gi.top_features(3):
        print(f"  SHAP importance {name:<4} {score:.3f}")

    # ------------------------------------------------------------------
    # 3. sparse classification: noise features get ~zero
    # ------------------------------------------------------------------
    Xs, ys, informative = make_sparse_classification(
        n_samples=1000, n_informative=3, n_noise_features=7, random_state=2
    )
    clf = RandomForestClassifier(
        n_estimators=40, max_depth=8, random_state=0
    ).fit(Xs.values, ys)
    explainer = TreeShapExplainer(clf, Xs.feature_names, class_index=1)
    gi = explainer.global_importance(Xs.values[:100])
    informative_mass = gi.importances[:3].sum()
    noise_mass = gi.importances[3:].sum()
    print("\nsparse problem (3 informative, 7 noise features):")
    print(f"  attribution mass on informative features: "
          f"{informative_mass / (informative_mass + noise_mass):.1%}")
    dummy = check_dummy(
        lambda z: explainer.explain(z).values,
        Xs.values[0],
        list(range(3, 10)),
        atol=0.05,
    )
    print(f"  max |attribution| on a noise feature: "
          f"{dummy['max_attribution']:.4f}")


if __name__ == "__main__":
    main()
