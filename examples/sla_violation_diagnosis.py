"""SLA-violation diagnosis: compare explainers on the same incident.

Reproduces the paper's core scenario: an operator sees a predicted SLA
violation and asks *why*.  We explain the same incident with TreeSHAP,
KernelSHAP, and LIME, show that they (mostly) agree on what matters,
and verify each explanation's faithfulness with a deletion curve.
Finally the whole set of predicted violations is triaged in one
vectorized ``diagnose_batch`` pass.

Run:
    python examples/sla_violation_diagnosis.py
"""

import numpy as np

from repro.core import NFVExplainabilityPipeline

from repro.core.evaluation import (
    agreement_matrix,
    deletion_curve,
    normalized_auc,
)
from repro.core.explainers import (
    KernelShapExplainer,
    LimeExplainer,
    TreeShapExplainer,
    model_output_fn,
)
from repro.datasets import make_sla_violation_dataset
from repro.ml import RandomForestClassifier
from repro.ml.model_selection import train_test_split


def main() -> None:
    dataset = make_sla_violation_dataset(n_epochs=3000, random_state=11)
    X_train, X_test, y_train, y_test = train_test_split(
        dataset.X.values, dataset.y, test_size=0.3, random_state=0,
        stratify=dataset.y,
    )
    model = RandomForestClassifier(
        n_estimators=60, max_depth=10, random_state=0
    ).fit(X_train, y_train)
    print(f"model test accuracy: {model.score(X_test, y_test):.3f}")

    fn = model_output_fn(model)          # violation probability
    background = X_train[:80]
    names = dataset.feature_names

    explainers = {
        "tree_shap": TreeShapExplainer(model, names, class_index=1),
        "kernel_shap": KernelShapExplainer(
            fn, background, names, n_samples=512, random_state=0
        ),
        "lime": LimeExplainer(
            fn, X_train, names, n_samples=600, random_state=0
        ),
    }

    # a confidently-predicted violation from the test period
    test_scores = fn(X_test)
    incident = X_test[np.argmax(test_scores)]
    print(f"\nincident violation probability: {test_scores.max():.3f}")

    attributions = {}
    baseline = X_train.mean(axis=0)
    for name, explainer in explainers.items():
        explanation = explainer.explain(incident)
        attributions[name] = explanation.values
        auc = normalized_auc(
            deletion_curve(fn, incident, explanation.values, baseline)
        )
        print(f"\n--- {name} (deletion AUC {auc:.3f}, "
              f"additivity gap {explanation.additivity_gap():.2e})")
        for feature, value in explanation.top_features(5):
            print(f"  {feature:<34} {value:+.4f}")

    print("\ncross-method rank agreement (Spearman of |attribution|):")
    method_names, matrix = agreement_matrix(attributions)
    header = " ".join(f"{m:>12}" for m in method_names)
    print(f"{'':>12} {header}")
    for i, row_name in enumerate(method_names):
        cells = " ".join(f"{matrix[i, j]:>12.3f}" for j in range(len(method_names)))
        print(f"{row_name:>12} {cells}")

    # fleet triage: every predicted violation in the test period,
    # diagnosed in one vectorized pass through the pipeline
    pipeline = NFVExplainabilityPipeline(
        RandomForestClassifier(n_estimators=60, max_depth=10, random_state=0),
        explainer_method="tree_shap",
        random_state=0,
    ).fit(dataset)
    predicted = np.flatnonzero(test_scores >= pipeline.threshold)[:20]
    diagnoses = pipeline.diagnose_batch(X_test[predicted])
    print(f"\nfleet triage: {len(diagnoses)} predicted violations "
          "(diagnose_batch, one shared background evaluation)")
    suspects: dict[int, int] = {}
    for diagnosis in diagnoses:
        if diagnosis.primary_suspect is not None:
            suspects[diagnosis.primary_suspect] = (
                suspects.get(diagnosis.primary_suspect, 0) + 1
            )
    for vnf, count in sorted(suspects.items(), key=lambda kv: -kv[1]):
        print(f"  vnf{vnf}: primary suspect in {count} incidents")


if __name__ == "__main__":
    main()
